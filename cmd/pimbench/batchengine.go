package main

// `pimbench batchengine` is the batch-engine perf-regression harness: the
// steady-state cost of repeated batch operations on a long-lived warmed
// core.Map, over the canonical shape grid core.BatchBenchShapes() — the same
// grid as `go test -bench BenchmarkBatchEngine .`. Each run is one labeled
// entry in results/BENCH_batchengine.json (previous entries are preserved),
// so the file accumulates before/after pairs across PRs. Besides wall-clock
// and allocation numbers, every line records the model metrics (IO time,
// PIM time, rounds, CPU work/depth): an optimization entry is only valid if
// those columns are identical to the entry it improves on.

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"pimgo/internal/core"
)

// beBenchResult is one shape's measurement in one entry.
type beBenchResult struct {
	Name        string  `json:"name"`
	Op          string  `json:"op"`
	P           int     `json:"p"`
	Batch       int     `json:"batch"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// Model metrics of the shape's fixed measurement batch (BatchBench.
	// Measure) — must not change between entries of the same shape.
	IOTime   int64 `json:"io_time"`
	PIMTime  int64 `json:"pim_time"`
	Rounds   int64 `json:"rounds"`
	CPUWork  int64 `json:"cpu_work"`
	CPUDepth int64 `json:"cpu_depth"`
}

// beEntry is one labeled run of the harness.
type beEntry struct {
	Label      string          `json:"label"`
	Date       string          `json:"date"`
	GoVersion  string          `json:"go"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Note       string          `json:"note,omitempty"`
	Benchmarks []beBenchResult `json:"benchmarks"`
}

func runBatchEngine(args []string) {
	f := fs("batchengine")
	outPath := f.String("out", "results/BENCH_batchengine.json", "JSON output file")
	label := f.String("label", "current", "entry label (an existing entry with the same label is replaced)")
	note := f.String("note", "", "free-form note stored with the entry")
	maxP := f.Int("maxp", 0, "skip shapes with P larger than this (0 = run all)")
	f.Parse(args)

	entry := beEntry{
		Label:      *label,
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Note:       *note,
	}

	for _, sh := range core.BatchBenchShapes() {
		if *maxP > 0 && sh.P > *maxP {
			continue
		}
		bb := core.NewBatchBench(sh)
		bb.Warm()
		last := bb.Measure()
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bb.Iter(b)
			}
		})
		nsPerOp := float64(r.T.Nanoseconds()) / float64(r.N)
		res := beBenchResult{
			Name:        fmt.Sprintf("Batch/%s/P=%d/B=%d", sh.Op, sh.P, sh.Batch),
			Op:          sh.Op,
			P:           sh.P,
			Batch:       sh.Batch,
			NsPerOp:     nsPerOp,
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			IOTime:      last.IOTime,
			PIMTime:     last.PIMTime,
			Rounds:      last.Rounds,
			CPUWork:     last.CPUWork,
			CPUDepth:    last.CPUDepth,
		}
		entry.Benchmarks = append(entry.Benchmarks, res)
		fmt.Printf("%-24s %12.1f ns/op %6d allocs/op %8d B/op  io=%d pim=%d rounds=%d cpuW=%d\n",
			res.Name, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp,
			res.IOTime, res.PIMTime, res.Rounds, res.CPUWork)
	}

	if len(entry.Benchmarks) == 0 {
		refuse("batchengine: -maxp %d excludes every shape; nothing recorded", *maxP)
	}

	n, _, err := mergeBenchEntry(*outPath, "batchengine", "one op = one steady-state batch operation on a warmed Map",
		entry, func(e beEntry) string { return e.Label })
	if err != nil {
		refuse("batchengine: %v", err)
	}
	fmt.Printf("wrote %s (%d entries, label %q)\n", *outPath, n, entry.Label)
}
