package main

import (
	"runtime"
	"time"

	"fmt"
	"math"
	"pimgo/internal/cpu"

	"pimgo/internal/adversary"
	"pimgo/internal/ballsbins"
	"pimgo/internal/baseline"
	"pimgo/internal/core"
)

// runBalls regenerates Lemmas 2.1 and 2.2 empirically: max/mean bin loads
// over many trials, swept across P and the balls-to-bins ratio.
func runBalls(args []string) {
	f := fs("balls")
	trials := f.Int("trials", 25, "independent trials (whp envelope)")
	f.Parse(args)

	fmt.Println("Lemma 2.1: T balls in P bins; Θ(T/P) per bin whp once T = Ω(P logP)")
	t := newTable("P", "T/P", "max/mean (worst of trials)")
	for _, p := range []int{64, 256, 1024, 4096} {
		for _, ratio := range []int{1, lg(p), lg(p) * lg(p)} {
			worst := ballsbins.MaxOverTrials(*trials, uint64(p), func(seed uint64) ballsbins.Loads {
				return ballsbins.Throw(p*ratio, p, seed)
			})
			t.add(p, ratio, worst)
		}
	}
	t.print()

	fmt.Println("\nLemma 2.2: weighted balls, cap W/(P·logP); O(W/P) per bin whp")
	t2 := newTable("P", "weights", "max/mean (worst of trials)")
	for _, p := range []int{64, 256, 1024} {
		total := float64(p * 1000)
		capw := ballsbins.CapWeights(total, p)
		worst := ballsbins.MaxOverTrials(*trials, uint64(p)+1, func(seed uint64) ballsbins.Loads {
			return ballsbins.ThrowWeighted(capw, p, seed)
		})
		t2.add(p, "all-at-cap", worst)
		geo := ballsbins.GeometricWeights(p*100, total, p, 99)
		worst = ballsbins.MaxOverTrials(*trials, uint64(p)+2, func(seed uint64) ballsbins.Loads {
			return ballsbins.ThrowWeighted(geo, p, seed)
		})
		t2.add(p, "geometric(clipped)", worst)
	}
	t2.print()

	fmt.Println("\nViolating the cap breaks the bound (one ball = W/2):")
	p := 256
	w := make([]float64, 100)
	w[0] = 5000
	for i := 1; i < len(w); i++ {
		w[i] = 5000.0 / 99
	}
	fmt.Printf("  P=%d uncapped max/mean = %.1f (≈P/2 when the heavy ball lands alone)\n",
		p, ballsbins.ThrowWeighted(w, p, 3).MaxMeanRatio())
}

// runImbalance reproduces §4.2's negative result: under the same-successor
// adversary, naive batched Successor serializes (IO time Θ(batch·…)) while
// the pivoted algorithm stays polylog.
func runImbalance(args []string) {
	f := fs("imbalance")
	ps := f.String("P", "8,16,32,64", "module counts")
	f.Parse(args)
	fmt.Println("§4.2 — same-successor adversary, batch P·log²P:")
	t := newTable("P", "batch", "pivotIO", "naiveIO", "naive/pivot", "pivotPIM", "naivePIM", "pivotRounds", "naiveRounds")
	for _, p := range parseInts(*ps) {
		b := p * lg(p) * lg(p)
		m1, g1 := buildMapAnchored(p, 1<<12, 0xB1)
		_, s1 := m1.Successor(g1.Batch(adversary.SameSuccessor, b))
		m2, g2 := buildMapAnchored(p, 1<<12, 0xB1, func(c *core.Config) { c.NaiveBatch = true })
		_, s2 := m2.Successor(g2.Batch(adversary.SameSuccessor, b))
		t.add(p, b, s1.IOTime, s2.IOTime, float64(s2.IOTime)/float64(s1.IOTime),
			s1.PIMTime, s2.PIMTime, s1.Rounds, s2.Rounds)
	}
	t.print()
}

// runRange regenerates Theorems 5.1 and 5.2 and locates the broadcast/tree
// crossover in range size K.
func runRange(args []string) {
	f := fs("range")
	mode := f.String("mode", "all", "broadcast|tree|crossover|auto|all")
	f.Parse(args)
	if *mode == "broadcast" || *mode == "all" {
		rangeBroadcastExp()
		fmt.Println()
	}
	if *mode == "tree" || *mode == "all" {
		rangeTreeExp()
		fmt.Println()
	}
	if *mode == "crossover" || *mode == "all" {
		rangeCrossoverExp()
		fmt.Println()
	}
	if *mode == "auto" || *mode == "all" {
		rangeAutoExp()
	}
}

func rangeBroadcastExp() {
	fmt.Println("Theorem 5.1 — broadcast range ops: O(1) rounds, O(K/P+logn) PIM, O(K/P) return IO")
	t := newTable("P", "n", "K", "rounds", "PIM", "PIM/(K/P+logn)", "IO", "IO/(K/P)")
	for _, p := range []int{16, 64} {
		n := 1 << 15
		m := buildMap(p, n, 0xC1)
		keys := m.KeysInOrder()
		for _, frac := range []int{64, 16, 4} {
			k := len(keys) / frac
			lo, hi := keys[len(keys)/2-k/2], keys[len(keys)/2+k/2-1]
			res, st := m.RangeBroadcast(core.RangeOp[uint64, int64]{Lo: lo, Hi: hi, Kind: core.RangeRead})
			kpp := float64(res.Count)/float64(p) + float64(lg(n))
			t.add(p, n, res.Count, st.Rounds, st.PIMTime, float64(st.PIMTime)/kpp,
				st.IOTime, float64(st.IOTime)/(float64(res.Count)/float64(p)+1))
		}
	}
	t.print()
}

func rangeTreeExp() {
	fmt.Println("Theorem 5.2 — tree range ops, batch of B ranges covering κ keys:")
	fmt.Println("IO O(κ/P + log³P), PIM O((κ/P + log²P)·logn), both whp")
	t := newTable("P", "B", "κ", "IO", "IO/(κ/P+log³P)", "PIM", "rounds")
	for _, p := range []int{16, 32} {
		n := 1 << 15
		m := buildMap(p, n, 0xC2)
		keys := m.KeysInOrder()
		for _, width := range []int{4, 32, 256} {
			B := p * lg(p)
			ops := make([]core.RangeOp[uint64, int64], B)
			stride := len(keys) / (B + 1)
			var kappa int64
			for i := range ops {
				loIdx := (i + 1) * stride
				hiIdx := loIdx + width - 1
				if hiIdx >= len(keys) {
					hiIdx = len(keys) - 1
				}
				ops[i] = core.RangeOp[uint64, int64]{Lo: keys[loIdx], Hi: keys[hiIdx], Kind: core.RangeCount}
			}
			res, st := m.RangeTree(ops)
			for _, r := range res {
				kappa += r.Count
			}
			l := lg(p)
			denom := float64(kappa)/float64(p) + float64(l*l*l)
			t.add(p, B, kappa, st.IOTime, float64(st.IOTime)/denom, st.PIMTime, st.Rounds)
		}
	}
	t.print()
}

func rangeAutoExp() {
	fmt.Println("RangeAuto — the §5.2 hybrid: estimate sizes from the replicated upper part,")
	fmt.Println("send big ranges to broadcast and small ones to the tree batch.")
	t := newTable("mix", "autoWork", "treeWork", "bcastWork", "autoIO", "treeIO")
	p := 32
	m := buildMap(p, 1<<15, 0xC4)
	keys := m.KeysInOrder()
	mixes := map[string][]core.RangeOp[uint64, int64]{}
	var tiny []core.RangeOp[uint64, int64]
	for i := 0; i < 60; i++ {
		lo := keys[100+i*400]
		tiny = append(tiny, core.RangeOp[uint64, int64]{Lo: lo, Hi: keys[100+i*400+3], Kind: core.RangeCount})
	}
	mixes["tiny-only"] = tiny
	huge := core.RangeOp[uint64, int64]{Lo: keys[0], Hi: keys[len(keys)-1], Kind: core.RangeCount}
	mixes["mixed"] = append(append([]core.RangeOp[uint64, int64]{}, tiny...), huge)
	mixes["huge-only"] = []core.RangeOp[uint64, int64]{huge}
	for _, name := range []string{"tiny-only", "mixed", "huge-only"} {
		ops := mixes[name]
		_, sa := m.RangeAuto(ops)
		_, stt := m.RangeTree(ops)
		var bw int64
		for _, op := range ops {
			_, sb := m.RangeBroadcast(op)
			bw += sb.TotalPIMWork
		}
		t.add(name, sa.TotalPIMWork, stt.TotalPIMWork, bw, sa.IOTime, stt.IOTime)
	}
	t.print()
}

func rangeCrossoverExp() {
	fmt.Println("Broadcast vs tree, single range of K pairs. §5.2: broadcast \"is wasteful")
	fmt.Println("for small ranges, as it involves all the PIM modules even when only a few")
	fmt.Println("contain any keys in the range\" — so total PIM work and total messages are")
	fmt.Println("the honest comparison; broadcast always wins raw IO time by construction.")
	t := newTable("P", "K", "bcastWork", "treeWork", "bcastMsgs", "treeMsgs", "bcastIO", "treeIO", "winnerWork")
	p := 32
	n := 1 << 15
	m := buildMap(p, n, 0xC3)
	keys := m.KeysInOrder()
	for _, k := range []int{8, 64, 512, 4096, len(keys) / 2} {
		lo := keys[len(keys)/4]
		hiIdx := len(keys)/4 + k - 1
		if hiIdx >= len(keys) {
			hiIdx = len(keys) - 1
		}
		hi := keys[hiIdx]
		op := core.RangeOp[uint64, int64]{Lo: lo, Hi: hi, Kind: core.RangeRead}
		_, bst := m.RangeBroadcast(op)
		_, tst := m.RangeTreeOne(op)
		winner := "tree"
		if bst.TotalPIMWork < tst.TotalPIMWork {
			winner = "broadcast"
		}
		t.add(p, k, bst.TotalPIMWork, tst.TotalPIMWork, bst.TotalMsgs, tst.TotalMsgs,
			bst.IOTime, tst.IOTime, winner)
	}
	t.print()
}

// runBaseline compares the PIM skip list against the range-partitioned
// baseline across workloads (§2.2/§3.1): who wins where, and by how much.
func runBaseline(args []string) {
	f := fs("baseline")
	p := f.Int("P", 32, "modules")
	f.Parse(args)
	P := *p
	const n = 1 << 14
	b := P * lg(P)

	fmt.Printf("Ours vs range-partitioned skip list (P=%d, n=%d, Get batches of %d):\n", P, n, b)
	t := newTable("workload", "oursIO", "oursPIMbal", "rpIO", "rpPIMbal", "rp/ours IO")
	for _, w := range []adversary.Workload{adversary.Uniform, adversary.SameKey, adversary.RangeCluster, adversary.Zipf, adversary.Sequential} {
		g := adversary.NewGen(0xD1, keySpace)
		seed := g.Batch(adversary.Uniform, n)
		vals := make([]int64, n)

		ours := core.New[uint64, int64](core.Config{P: P, Seed: 5}, core.Uint64Hash)
		ours.Upsert(seed, vals)
		rp := baseline.New[uint64, int64](P, 5, baseline.UniformSplitters(P, keySpace))
		rp.Upsert(seed, vals)

		batch := g.Batch(w, b)
		_, so := ours.Get(batch)
		_, sr := rp.Get(batch)
		ratio := math.Inf(1)
		if so.IOTime > 0 {
			ratio = float64(sr.IOTime) / float64(so.IOTime)
		}
		t.add(string(w), so.IOTime, so.PIMBalanceWork(P), sr.IOTime, sr.PIMBalanceWork(P), ratio)
	}
	t.print()

	fmt.Println("\nRange query comparison (range partitioning is GOOD at ranges — honest column):")
	t2 := newTable("K", "oursBcastIO", "oursTreeIO", "rpRangeIO")
	g := adversary.NewGen(0xD2, keySpace)
	seed := g.Batch(adversary.Uniform, n)
	vals := make([]int64, n)
	ours := core.New[uint64, int64](core.Config{P: P, Seed: 6}, core.Uint64Hash)
	ours.Upsert(seed, vals)
	rp := baseline.New[uint64, int64](P, 6, baseline.UniformSplitters(P, keySpace))
	rp.Upsert(seed, vals)
	keys := ours.KeysInOrder()
	for _, k := range []int{64, 1024, 8192} {
		lo := keys[len(keys)/4]
		hi := keys[min(len(keys)/4+k-1, len(keys)-1)]
		op := core.RangeOp[uint64, int64]{Lo: lo, Hi: hi, Kind: core.RangeRead}
		_, b1 := ours.RangeBroadcast(op)
		_, b2 := ours.RangeTreeOne(op)
		_, b3 := rp.Range(lo, hi)
		t2.add(k, b1.IOTime, b2.IOTime, b3.IOTime)
	}
	t2.print()

	fmt.Println("\nDynamic migration cannot keep up (§3.1: \"even with dynamic data")
	fmt.Println("migration, suffers from PIM-imbalance\"): rebalance eagerly before every")
	fmt.Println("batch; the adversary clusters each batch at a fresh location anyway.")
	t3 := newTable("round", "migrationMsgs", "nextBatchIO", "nextBatchBal")
	rp2 := baseline.New[uint64, int64](P, 7, baseline.UniformSplitters(P, keySpace))
	g3 := adversary.NewGen(0xD3, keySpace)
	rp2.Upsert(g3.Batch(adversary.Uniform, n), make([]int64, n))
	for round := 0; round < 4; round++ {
		mig := rp2.Rebalance()
		fresh := g3.Batch(adversary.RangeCluster, b)
		_, st := rp2.Get(fresh)
		t3.add(round, mig.TotalMsgs, st.IOTime, st.PIMBalanceWork(P))
	}
	t3.print()
}

// runAblate sweeps the design knobs DESIGN.md calls out: the lower-part
// height, the pivot spacing, and Get deduplication.
func runAblate(args []string) {
	f := fs("ablate")
	what := f.String("what", "all", "hlow|pivot|dedup|all")
	f.Parse(args)
	if *what == "hlow" || *what == "all" {
		ablateHLow()
		fmt.Println()
	}
	if *what == "pivot" || *what == "all" {
		ablatePivot()
		fmt.Println()
	}
	if *what == "dedup" || *what == "all" {
		ablateDedup()
	}
}

func ablateHLow() {
	const P = 32
	fmt.Println("ABL-H — lower-part height h_low (paper: logP). Shallower ⇒ bigger replicated")
	fmt.Println("upper part (space, broadcast cost); deeper ⇒ longer remote search chains.")
	fmt.Println("The extremes are the §3.1 strawmen: h_low=1 ≈ full replication (fine for")
	fmt.Println("reads, ruinous space/update broadcast); h_low=14 ≈ fine-grained partitioning")
	fmt.Println("(no replication: 'every key search would access nodes in many different")
	fmt.Println("PIM modules').")
	t := newTable("hlow", "succIO", "succPIM", "upsertIO", "upperNodes/module", "space max/mean")
	for _, h := range []int{1, lg(P) - 2, lg(P), lg(P) + 2, 14} {
		if h < 1 {
			continue
		}
		m := buildMap(P, 1<<14, 0xE1, func(c *core.Config) { c.HLow = h })
		b := P * lg(P) * lg(P)
		_, st := m.Successor(uniformKeys(13, b))
		_, stU := m.Upsert(uniformKeys(14, b), make([]int64, b))
		lower, upper := m.NodeCounts()
		var tot, maxm int64
		for i := range lower {
			s := lower[i] + upper[i]
			tot += s
			if s > maxm {
				maxm = s
			}
		}
		t.add(h, st.IOTime, st.PIMTime, stU.IOTime, upper[0], float64(maxm)/(float64(tot)/float64(P)))
	}
	t.print()
}

func ablatePivot() {
	const P = 32
	fmt.Println("ABL-PIV — pivot spacing (paper: logP ops/segment) under the same-successor adversary.")
	t := newTable("spacing", "pivots", "IO", "PIM", "rounds", "maxAccess")
	b := P * lg(P) * lg(P)
	for _, s := range []int{1, lg(P), lg(P) * lg(P), b / 2} {
		m, g := buildMapAnchored(P, 1<<13, 0xE2, func(c *core.Config) { c.PivotSpacing = s })
		keys := g.Batch(adversary.SameSuccessor, b)
		_, st := m.Successor(keys)
		t.add(s, (b+s-1)/s, st.IOTime, st.PIMTime, st.Rounds, st.MaxNodeAccess)
	}
	t.print()
}

func ablateDedup() {
	const P = 32
	fmt.Println("ABL-DEDUP — semisort dedup of Get batches vs duplicate fraction.")
	t := newTable("dupFrac", "dedupIO", "noDedupIO", "noDedup/dedup")
	b := P * lg(P) * lg(P)
	for _, dupPct := range []int{0, 50, 90, 100} {
		mk := func(nodedup bool) int64 {
			m := buildMap(P, 1<<13, 0xE3, func(c *core.Config) { c.NoDedup = nodedup })
			target, _ := m.SuccessorOne(0)
			keys := uniformKeys(15, b)
			for i := 0; i < len(keys)*dupPct/100; i++ {
				keys[i] = target.Key
			}
			_, st := m.Get(keys)
			return st.IOTime
		}
		d, nd := mk(false), mk(true)
		t.add(fmt.Sprintf("%d%%", dupPct), d, nd, float64(nd)/float64(d))
	}
	t.print()
}

// runWhy answers the paper's opening question — "can we provide theoretical
// justification for why processing-in-memory is a good idea?" — with the
// model's own currency: data movement. Every unit of module-local work our
// algorithms perform would be a cross-network access under the §2.2
// shared-memory emulation (Valiant-style PRAM-on-BSP, where ALL accessed
// memory moves across the network). The saving is TotalPIMWork/TotalMsgs:
// how many memory touches stayed local per word that actually crossed.
func runWhy(args []string) {
	f := fs("why")
	pFlag := f.Int("P", 32, "modules")
	f.Parse(args)
	P := *pFlag
	n := 1 << 15
	fmt.Printf("Data movement saved by processing-in-memory (P=%d, n=%d):\n", P, n)
	fmt.Println("localTouches = PIM work our algorithms did next to the data;")
	fmt.Println("moved        = words that actually crossed the network;")
	fmt.Println("emulation moves localTouches+moved, so saving = (local+moved)/moved.")
	t := newTable("operation", "batch", "localTouches", "moved", "saving")
	m := buildMap(P, n, 0x11F)

	record := func(name string, st core.BatchStats) {
		moved := st.TotalMsgs
		if moved == 0 {
			moved = 1
		}
		t.add(name, st.Batch, st.TotalPIMWork, st.TotalMsgs,
			float64(st.TotalPIMWork+st.TotalMsgs)/float64(moved))
	}
	_, st := m.Get(uniformKeys(31, P*lg(P)))
	record("Get", st)
	_, st = m.Successor(uniformKeys(32, P*lg(P)*lg(P)))
	record("Successor", st)
	b := P * lg(P) * lg(P)
	_, st = m.Upsert(uniformKeys(33, b), make([]int64, b))
	record("Upsert", st)
	keys := m.KeysInOrder()
	_, st = m.RangeBroadcast(core.RangeOp[uint64, int64]{Lo: keys[len(keys)/4], Hi: keys[3*len(keys)/4], Kind: core.RangeCount})
	record("RangeCount(bcast)", st)
	_, st = m.RangeBroadcast(core.RangeOp[uint64, int64]{
		Lo: keys[0], Hi: keys[len(keys)-1], Kind: core.RangeReduce,
		Reduce: func(a, b int64) int64 { return a + b },
	})
	record("RangeSum(bcast)", st)
	t.print()
	fmt.Println("\nThe reductions and broadcast scans save the most: the computation visits")
	fmt.Println("every pair but only one word per module crosses the network — exactly the")
	fmt.Println("data-movement argument that motivates processing-in-memory (§1).")
}

// runCPUScale validates the §2.1 scheduling claim with a REAL work-stealing
// runtime (internal/cpu.Pool): an algorithm with W work and D depth runs in
// O(W/P' + D) expected time on P' cores. We time a fixed fork–join workload
// on 1..P' workers and compare measured speedup to the predicted curve.
func runCPUScale(args []string) {
	f := fs("cpuscale")
	iters := f.Int("leaf", 2000, "per-leaf spin iterations")
	nFlag := f.Int("n", 1<<13, "parallel-for width")
	f.Parse(args)
	n := *nFlag
	maxP := runtime.GOMAXPROCS(0)
	fmt.Printf("work-stealing fork–join on up to %d cores; W = n·leaf, D ≈ log n + leaf\n", maxP)
	t := newTable("P'", "wall", "speedup", "predicted (W/P'+D)/(W+D)⁻¹", "steals")

	workload := func(p *cpu.Pool) time.Duration {
		start := time.Now()
		p.ParallelFor(0, n, 8, func(i int) {
			x := uint64(i)
			for j := 0; j < *iters; j++ {
				x = x*6364136223846793005 + 1442695040888963407
			}
			if x == 42 {
				panic("unreachable")
			}
		})
		return time.Since(start)
	}
	var base time.Duration
	for pp := 1; pp <= maxP; pp *= 2 {
		pool := cpu.NewPool(pp, uint64(pp))
		// Warm up, then take the best of 3 (scheduling noise).
		workload(pool)
		best := time.Duration(1 << 62)
		for k := 0; k < 3; k++ {
			if d := workload(pool); d < best {
				best = d
			}
		}
		steals := pool.Steals()
		pool.Close()
		if pp == 1 {
			base = best
		}
		w := float64(n * *iters)
		d := float64(cpu.SpanOf(n) + *iters)
		predicted := (w + d) / (w/float64(pp) + d)
		t.add(pp, best.String(), float64(base)/float64(best), predicted, steals)
	}
	t.print()
	fmt.Println("\nMeasured speedups should track the predicted O(W/P'+D) curve (within")
	fmt.Println("scheduler overhead); steals > 0 shows the load balancing is real.")
}
