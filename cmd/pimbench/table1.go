package main

import (
	"fmt"

	"pimgo/internal/core"
	"pimgo/internal/rng"
)

// runTable1 reproduces Table 1: for every operation row, measure IO time,
// PIM time, CPU work/op, CPU depth, and minimum shared memory across a
// sweep of P, and print the paper's asymptotic bound next to each metric.
// Absolute values are simulator units; the claim under test is the growth
// SHAPE as P scales (polylog in P, independent of n and skew).
func runTable1(args []string) {
	f := fs("table1")
	op := f.String("op", "all", "get|succ|upsert|delete|all")
	ps := f.String("P", "4,8,16,32,64", "module counts")
	n := f.Int("n", 1<<15, "resident keys")
	f.Parse(args)

	run := func(name string) {
		switch name {
		case "get":
			table1Get(parseInts(*ps), *n)
		case "succ":
			table1Succ(parseInts(*ps), *n)
		case "upsert":
			table1Upsert(parseInts(*ps), *n)
		case "delete":
			table1Delete(parseInts(*ps), *n)
		default:
			panic("unknown op " + name)
		}
	}
	if *op == "all" {
		for _, name := range []string{"get", "succ", "upsert", "delete"} {
			run(name)
			fmt.Println()
		}
		return
	}
	run(*op)
}

func uniformKeys(seed uint64, b int) []uint64 {
	r := rng.NewXoshiro256(seed)
	keys := make([]uint64, b)
	for i := range keys {
		keys[i] = 1 + r.Uint64n(keySpace)
	}
	return keys
}

func table1Get(ps []int, n int) {
	fmt.Println("Table 1 / Get-Update: batch P·logP — paper: IO O(logP), PIM O(logP), CPU/op O(1), depth O(logP), M Θ(PlogP)")
	t := newTable("P", "batch", "IO", "IO/logP", "PIM", "PIM/logP", "CPUwork/op", "depth", "minM", "balIO", "balW")
	for _, p := range ps {
		m := buildMap(p, n, 0xA1)
		b := p * lg(p)
		_, st := m.Get(uniformKeys(7, b))
		t.add(p, b, st.IOTime, float64(st.IOTime)/float64(lg(p)), st.PIMTime,
			float64(st.PIMTime)/float64(lg(p)), float64(st.CPUWork)/float64(b),
			st.CPUDepth, st.CPUMem, st.PIMBalanceIO(p), st.PIMBalanceWork(p))
	}
	t.print()
}

func table1Succ(ps []int, n int) {
	fmt.Println("Table 1 / Successor: batch P·log²P — paper: IO O(log³P), PIM O(log²P·logn), CPU/op O(logP), depth O(log²P), M Θ(Plog²P)")
	t := newTable("P", "batch", "IO", "IO/log³P", "PIM", "PIM/(log²P·logn)", "CPUwork/op", "depth", "minM", "phases", "maxAcc")
	logn := lg(n)
	for _, p := range ps {
		m := buildMap(p, n, 0xA2)
		b := p * lg(p) * lg(p)
		_, st := m.Successor(uniformKeys(9, b))
		l := lg(p)
		t.add(p, b, st.IOTime, float64(st.IOTime)/float64(l*l*l), st.PIMTime,
			float64(st.PIMTime)/float64(l*l*logn), float64(st.CPUWork)/float64(b),
			st.CPUDepth, st.CPUMem, st.Phases, st.MaxNodeAccess)
	}
	t.print()
}

func table1Upsert(ps []int, n int) {
	fmt.Println("Table 1 / Upsert: batch P·log²P — paper: IO O(log³P), PIM O(log²P·logn), CPU/op O(logP), depth O(log²P), M Θ(Plog²P)")
	t := newTable("P", "batch", "IO", "IO/log³P", "PIM", "CPUwork/op", "depth", "minM")
	for _, p := range ps {
		m := buildMap(p, n, 0xA3)
		b := p * lg(p) * lg(p)
		keys := uniformKeys(11, b)
		_, st := m.Upsert(keys, make([]int64, b))
		l := lg(p)
		if err := m.CheckInvariants(); err != nil {
			panic(fmt.Sprintf("P=%d: %v", p, err))
		}
		t.add(p, b, st.IOTime, float64(st.IOTime)/float64(l*l*l), st.PIMTime,
			float64(st.CPUWork)/float64(b), st.CPUDepth, st.CPUMem)
	}
	t.print()
}

func table1Delete(ps []int, n int) {
	fmt.Println("Table 1 / Delete: batch P·log²P — paper: IO O(log²P), PIM O(log²P), CPU/op O(1), depth O(logP), M Θ(Plog²P)")
	t := newTable("P", "batch", "IO", "IO/log²P", "PIM", "PIM/log²P", "CPUwork/op", "depth", "minM")
	for _, p := range ps {
		m := buildMap(p, n, 0xA4)
		b := p * lg(p) * lg(p)
		// Delete keys actually present: ask the structure for them.
		present := m.KeysInOrder()
		if len(present) < b {
			b = len(present)
		}
		// Every lg(p)-th key, so deletions spread over the structure, plus
		// one consecutive run to exercise contraction.
		keys := make([]uint64, 0, b)
		for i := 0; len(keys) < b/2 && i < len(present); i += 2 {
			keys = append(keys, present[i])
		}
		for i := 0; len(keys) < b && i < len(present); i++ {
			if i%2 == 1 {
				keys = append(keys, present[i])
			}
		}
		_, st := m.Delete(keys)
		if err := m.CheckInvariants(); err != nil {
			panic(fmt.Sprintf("P=%d: %v", p, err))
		}
		l := lg(p)
		t.add(p, len(keys), st.IOTime, float64(st.IOTime)/float64(l*l), st.PIMTime,
			float64(st.PIMTime)/float64(l*l), float64(st.CPUWork)/float64(len(keys)),
			st.CPUDepth, st.CPUMem)
	}
	t.print()
}

func runSpace(args []string) {
	f := fs("space")
	ps := f.String("P", "8,16,32,64", "module counts")
	ns := f.String("n", "4096,16384,65536", "key counts")
	f.Parse(args)
	fmt.Println("Theorem 3.1: O(n) words total, O(n/P) whp per module (max/mean ≈ 1)")
	t := newTable("P", "n", "totalNodes", "maxModuleNodes", "max/mean", "upperNodes", "upper/module(O(n/P))")
	for _, p := range parseInts(*ps) {
		for _, n := range parseInts(*ns) {
			m := buildMap(p, n, 0xA5)
			lower, upper := m.NodeCounts()
			var tot, maxm, up int64
			for i := range lower {
				s := lower[i] + upper[i]
				tot += s
				if s > maxm {
					maxm = s
				}
				up = upper[i] // replicas: same count everywhere
			}
			mean := float64(tot) / float64(p)
			t.add(p, n, tot, maxm, float64(maxm)/mean, up, fmt.Sprintf("%.2f", float64(up)/(float64(n)/float64(p))))
		}
	}
	t.print()
}

func runLemma42(args []string) {
	f := fs("lemma42")
	pFlag := f.Int("P", 32, "modules")
	f.Parse(args)
	p := *pFlag
	fmt.Println("Lemma 4.2: pivot phases access no node more than 3× per phase;")
	fmt.Println("stage 2 is O(logP) by Lemma 2.2. Naive execution degrades to Θ(batch).")
	t := newTable("algo", "batchScale", "batch", "maxAccess/phase", "logP", "IO")
	for _, scale := range []int{1, 2, 4} {
		b := scale * p * lg(p) * lg(p)
		m, g := buildMapAnchored(p, 1<<13, 0xA6)
		keys := g.Batch("same-successor", b)
		_, st := m.Successor(keys)
		t.add("pivoted", scale, b, st.MaxNodeAccess, lg(p), st.IOTime)
	}
	for _, scale := range []int{1, 2, 4} {
		b := scale * p * lg(p) * lg(p)
		m, g := buildMapAnchored(p, 1<<13, 0xA6, func(c *core.Config) { c.NaiveBatch = true })
		keys := g.Batch("same-successor", b)
		_, st := m.Successor(keys)
		t.add("naive", scale, b, st.MaxNodeAccess, lg(p), st.IOTime)
	}
	t.print()
}
