package main

// `pimbench chaos` is the fault-injection harness: the same mixed batch
// workload runs on a fault-free Map and then under every built-in fault
// plan, and each faulted run must reproduce the fault-free reply stream
// and final structure exactly (the reliable transport hides the faults).
// Each plan becomes one row recording what was injected, what recovery
// cost in rounds/IO/wall-clock relative to the fault-free row, and proof
// of equivalence. One labeled entry accumulates per run in
// results/BENCH_chaos.json, like the other BENCH files.

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"time"

	"pimgo/internal/core"
	"pimgo/internal/pim"
	"pimgo/internal/rng"
)

// chaosResult is one plan's measurement in one entry.
type chaosResult struct {
	Plan    string  `json:"plan"`
	Batches int     `json:"batches"`
	WallMs  float64 `json:"wall_ms"`
	// Aggregate model metrics over the whole workload; recovery shows up
	// as extra Rounds/IOTime over the "none" row.
	Rounds       int64 `json:"rounds"`
	IOTime       int64 `json:"io_time"`
	PIMRoundTime int64 `json:"pim_round_time"`
	TotalMsgs    int64 `json:"total_msgs"`
	// RoundsOverNone is Rounds/Rounds(none): the round-count inflation
	// paid to recover from this plan's faults.
	RoundsOverNone float64 `json:"rounds_over_none"`
	// Equivalent records that the faulted reply stream and final snapshot
	// hashed identically to the fault-free run's.
	Equivalent bool           `json:"equivalent"`
	Faults     pim.FaultStats `json:"faults"`
}

// chaosEntry is one labeled run of the harness.
type chaosEntry struct {
	Label      string        `json:"label"`
	Date       string        `json:"date"`
	GoVersion  string        `json:"go"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	P          int           `json:"p"`
	Note       string        `json:"note,omitempty"`
	Plans      []chaosResult `json:"plans"`
}

// chaosRun drives the fixed mixed workload and returns aggregate metrics
// plus FNV hashes of the reply stream and the final snapshot.
type chaosRun struct {
	rounds, ioTime, pimRoundTime, totalMsgs int64
	batches                                 int
	replySum, structSum                     uint64
	faults                                  pim.FaultStats
	wall                                    time.Duration
}

func runChaosWorkload(p, batches int, plan core.FaultPlan) chaosRun {
	m := core.New[uint64, int64](core.Config{P: p, Seed: 0xC0FFEE, Fault: plan}, core.Uint64Hash)
	r := rng.NewXoshiro256(0xC4A05)
	h := fnv.New64a()
	var out chaosRun
	out.batches = batches
	const space = 1 << 14
	start := time.Now()
	for i := 0; i < batches; i++ {
		b := 16 + int(r.Uint64n(112))
		keys := make([]uint64, b)
		for j := range keys {
			keys[j] = 1 + r.Uint64n(space)
		}
		var st core.BatchStats
		switch r.Intn(6) {
		case 0:
			vals := make([]int64, b)
			for j := range vals {
				vals[j] = int64(r.Uint64() >> 1)
			}
			var ins []bool
			ins, st = m.Upsert(keys, vals)
			for _, v := range ins {
				fmt.Fprintf(h, "u%v", v)
			}
		case 1:
			var ok []bool
			ok, st = m.Delete(keys)
			for _, v := range ok {
				fmt.Fprintf(h, "d%v", v)
			}
		case 2:
			var res []core.GetResult[int64]
			res, st = m.Get(keys)
			for _, g := range res {
				fmt.Fprintf(h, "g%v:%v", g.Found, g.Value)
			}
		case 3:
			vals := make([]int64, b)
			for j := range vals {
				vals[j] = int64(r.Uint64() >> 1)
			}
			var ok []bool
			ok, st = m.Update(keys, vals)
			for _, v := range ok {
				fmt.Fprintf(h, "w%v", v)
			}
		case 4:
			var res []core.SearchResult[uint64, int64]
			res, st = m.Successor(keys)
			for _, s := range res {
				fmt.Fprintf(h, "s%v:%v:%v", s.Found, s.Key, s.Value)
			}
		case 5:
			var res []core.SearchResult[uint64, int64]
			res, st = m.Predecessor(keys)
			for _, s := range res {
				fmt.Fprintf(h, "p%v:%v:%v", s.Found, s.Key, s.Value)
			}
		}
		out.rounds += st.Rounds
		out.ioTime += st.IOTime
		out.pimRoundTime += st.PIMRoundTime
		out.totalMsgs += st.TotalMsgs
	}
	out.wall = time.Since(start)
	out.replySum = h.Sum64()
	ks, vs, _ := m.Snapshot()
	sh := fnv.New64a()
	for i := range ks {
		fmt.Fprintf(sh, "%v=%v;", ks[i], vs[i])
	}
	out.structSum = sh.Sum64()
	out.faults = m.FaultStats()
	m.Close()
	return out
}

func runChaos(args []string) {
	f := fs("chaos")
	outPath := f.String("out", "results/BENCH_chaos.json", "JSON output file")
	label := f.String("label", "current", "entry label (an existing entry with the same label is replaced)")
	note := f.String("note", "", "free-form note stored with the entry")
	p := f.Int("p", 16, "module count")
	batches := f.Int("batches", 120, "mixed batches per plan")
	seed := f.Uint64("seed", 0xFA17, "fault-plan seed")
	f.Parse(args)

	plans := []struct {
		name string
		plan core.FaultPlan
	}{
		{"none", nil},
		{"drop", pim.DropPlan(*seed, 800)},
		{"duplicate", pim.DupPlan(*seed, 800)},
		{"delay", pim.DelayPlan(*seed, 800, 3)},
		{"stall", pim.StallPlan(*seed, 1500, 4)},
		{"crash", pim.CrashPlan(*seed, 400, 2)},
		{"chaos", pim.ChaosPlan(*seed)},
	}

	entry := chaosEntry{
		Label:      *label,
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		P:          *p,
		Note:       *note,
	}

	var base chaosRun
	tbl := newTable("plan", "rounds", "io", "pimRound", "msgs", "xRounds", "retx", "replays", "equiv", "wall ms")
	allEquivalent := true
	for i, pl := range plans {
		run := runChaosWorkload(*p, *batches, pl.plan)
		if i == 0 {
			base = run
		}
		equiv := run.replySum == base.replySum && run.structSum == base.structSum
		allEquivalent = allEquivalent && equiv
		over := float64(run.rounds) / float64(base.rounds)
		res := chaosResult{
			Plan:           pl.name,
			Batches:        run.batches,
			WallMs:         float64(run.wall.Microseconds()) / 1000,
			Rounds:         run.rounds,
			IOTime:         run.ioTime,
			PIMRoundTime:   run.pimRoundTime,
			TotalMsgs:      run.totalMsgs,
			RoundsOverNone: over,
			Equivalent:     equiv,
			Faults:         run.faults,
		}
		entry.Plans = append(entry.Plans, res)
		tbl.add(pl.name, run.rounds, run.ioTime, run.pimRoundTime, run.totalMsgs,
			over, run.faults.Retransmits, run.faults.Replays, equiv, res.WallMs)
	}
	tbl.print()

	if !allEquivalent {
		refuse("chaos: a faulted run diverged from the fault-free run; not recording")
	}

	n, _, err := mergeBenchEntry(*outPath, "chaos",
		"one row = the fixed mixed workload under one fault plan; equivalence vs the fault-free row",
		entry, func(e chaosEntry) string { return e.Label })
	if err != nil {
		refuse("chaos: %v", err)
	}
	fmt.Printf("wrote %s (%d entries, label %q)\n", *outPath, n, entry.Label)
}
