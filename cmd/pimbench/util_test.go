package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type testEntry struct {
	Label string `json:"label"`
	N     int    `json:"n"`
}

func testLabel(e testEntry) string { return e.Label }

// TestMergeBenchEntry covers the shared results-file writer: fresh-file
// creation, append of a new label, in-place replacement of an existing
// label, and refusal to touch a corrupt file.
func TestMergeBenchEntry(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")

	n, replaced, err := mergeBenchEntry(path, "test", "unit", testEntry{Label: "a", N: 1}, testLabel)
	if err != nil || n != 1 || replaced {
		t.Fatalf("fresh write: n=%d replaced=%v err=%v, want 1,false,nil", n, replaced, err)
	}

	n, replaced, err = mergeBenchEntry(path, "test", "unit", testEntry{Label: "b", N: 2}, testLabel)
	if err != nil || n != 2 || replaced {
		t.Fatalf("append: n=%d replaced=%v err=%v, want 2,false,nil", n, replaced, err)
	}

	n, replaced, err = mergeBenchEntry(path, "test", "unit", testEntry{Label: "a", N: 3}, testLabel)
	if err != nil || n != 2 || !replaced {
		t.Fatalf("replace: n=%d replaced=%v err=%v, want 2,true,nil", n, replaced, err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var file benchJSON[testEntry]
	if err := json.Unmarshal(raw, &file); err != nil {
		t.Fatal(err)
	}
	if file.Bench != "test" || file.Unit != "unit" {
		t.Errorf("header = %q/%q, want test/unit", file.Bench, file.Unit)
	}
	want := []testEntry{{Label: "a", N: 3}, {Label: "b", N: 2}}
	if len(file.Entries) != len(want) {
		t.Fatalf("entries = %v, want %v", file.Entries, want)
	}
	for i, e := range file.Entries {
		if e != want[i] {
			t.Errorf("entry %d = %v, want %v", i, e, want[i])
		}
	}
}

func TestMergeBenchEntryRefusesCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := mergeBenchEntry(path, "test", "unit", testEntry{Label: "a"}, testLabel)
	if err == nil || !strings.Contains(err.Error(), "refusing to overwrite") {
		t.Fatalf("corrupt file: err = %v, want refusal", err)
	}
	raw, rerr := os.ReadFile(path)
	if rerr != nil || string(raw) != "{truncated" {
		t.Errorf("corrupt file was modified: %q, %v", raw, rerr)
	}
}

// stubExit replaces exitFn with one that records the code and panics with
// sentinel (so the refusing command stops like a real exit would), and
// returns a closure that asserts exactly one exit with code 1 happened.
func stubExit(t *testing.T, run func()) (exited bool, code int) {
	t.Helper()
	type exitSentinel struct{ code int }
	old := exitFn
	exitFn = func(c int) { panic(exitSentinel{c}) }
	defer func() { exitFn = old }()
	defer func() {
		if r := recover(); r != nil {
			s, ok := r.(exitSentinel)
			if !ok {
				panic(r)
			}
			exited, code = true, s.code
		}
	}()
	run()
	return false, 0
}

// TestRefuseExitsNonZero pins the refusal contract: every "not recording"
// path funnels through refuse, which must exit with a non-zero status so
// CI catches oracle divergences instead of reading a green run.
func TestRefuseExitsNonZero(t *testing.T) {
	oldStderr := os.Stderr
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = devnull
	defer func() { os.Stderr = oldStderr; devnull.Close() }()

	exited, code := stubExit(t, func() { refuse("synthetic divergence: %d != %d", 1, 2) })
	if !exited || code != 1 {
		t.Fatalf("refuse: exited=%v code=%d, want exit 1", exited, code)
	}
}

// TestChaosRefusalExitsNonZero drives the chaos command end-to-end into a
// refusal (corrupt results file) and asserts it exits 1 — the regression
// for divergence-style failures escaping CI with status 0.
func TestChaosRefusalExitsNonZero(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_chaos.json")
	if err := os.WriteFile(path, []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	oldStderr := os.Stderr
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = devnull
	defer func() { os.Stderr = oldStderr; devnull.Close() }()

	var exited bool
	var code int
	quiet(t, func() {
		exited, code = stubExit(t, func() {
			runChaos([]string{"-out", path, "-p", "4", "-batches", "4"})
		})
	})
	if !exited || code != 1 {
		t.Fatalf("chaos refusal: exited=%v code=%d, want exit 1", exited, code)
	}
}
