package main

// `pimbench cluster` is the sharded-cluster ladder: one deterministic
// mixed batch workload (point ops, successors, range operations) runs
// once on a fault-free single Map — the oracle — and then on clusters of
// increasing shard counts under three fault regimes: fault-free, chaos on
// every shard, and chaos plus permanent shard kills recovered from the
// journal. Every cluster row must reproduce the oracle's reply stream and
// final structure hash exactly (scatter/gather and exactly-once recovery
// are both invisible to callers); a divergence refuses to record and
// exits non-zero. Each row also records what recovery cost: kills,
// rebuilds, and the rounds charged to the recovery account. One labeled
// entry accumulates per run in results/BENCH_cluster.json.

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"time"

	"pimgo/internal/cluster"
	"pimgo/internal/core"
	"pimgo/internal/pim"
	"pimgo/internal/rng"
)

// clusterResult is one (shards, regime) row in one entry.
type clusterResult struct {
	Shards  int     `json:"shards"`
	Plan    string  `json:"plan"`
	Batches int     `json:"batches"`
	WallMs  float64 `json:"wall_ms"`
	// MaxRounds/MaxIOTime sum each batch's slowest-shard metric (the
	// parallel-elapsed view); TotalMsgs/TotalPIMWork sum over all shards.
	MaxRounds    int64 `json:"max_rounds"`
	MaxIOTime    int64 `json:"max_io_time"`
	TotalMsgs    int64 `json:"total_msgs"`
	TotalPIMWork int64 `json:"total_pim_work"`
	// Recovery accounting: shard machine deaths, journal rebuilds, and the
	// rounds charged to the per-shard recovery accounts.
	Kills          int64 `json:"kills"`
	Recoveries     int64 `json:"recoveries"`
	RecoveryRounds int64 `json:"recovery_rounds"`
	// Equivalent records that the reply stream and final structure hashed
	// identically to the single-Map oracle's.
	Equivalent bool `json:"equivalent"`
}

// clusterEntry is one labeled run of the ladder.
type clusterEntry struct {
	Label      string          `json:"label"`
	Date       string          `json:"date"`
	GoVersion  string          `json:"go"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	ShardP     int             `json:"shard_p"`
	Note       string          `json:"note,omitempty"`
	Rows       []clusterResult `json:"rows"`
}

// clusterWop is one pre-generated workload batch, shared by the oracle and
// every cluster run so the reply streams are comparable byte for byte.
type clusterWop struct {
	kind int // 0 upsert, 1 delete, 2 get, 3 successor, 4 range
	keys []uint64
	vals []int64
	rops []core.RangeOp[uint64, int64]
}

// genClusterOps builds the deterministic workload.
func genClusterOps(batches int) []clusterWop {
	r := rng.NewXoshiro256(0xC4A05)
	const space = 1 << 13
	ops := make([]clusterWop, batches)
	for i := range ops {
		b := 16 + int(r.Uint64n(112))
		w := clusterWop{kind: int(r.Uint64n(5))}
		w.keys = make([]uint64, b)
		for j := range w.keys {
			w.keys[j] = 1 + r.Uint64n(space)
		}
		switch w.kind {
		case 0:
			w.vals = make([]int64, b)
			for j := range w.vals {
				w.vals[j] = int64(r.Uint64() >> 1)
			}
		case 4:
			n := 1 + int(r.Uint64n(6))
			transform := r.Intn(3) == 0
			w.rops = make([]core.RangeOp[uint64, int64], n)
			for j := range w.rops {
				lo := 1 + r.Uint64n(space)
				op := core.RangeOp[uint64, int64]{Lo: lo, Hi: lo + r.Uint64n(space/4)}
				if transform {
					op.Kind = core.RangeTransform
					op.Transform = func(v int64) int64 { return v + 9 }
				} else {
					switch r.Intn(3) {
					case 0:
						op.Kind = core.RangeCount
					case 1:
						op.Kind = core.RangeRead
					case 2:
						op.Kind = core.RangeReduce
						op.Reduce = func(a, b int64) int64 { return a + b }
					}
				}
				w.rops[j] = op
			}
		}
		ops[i] = w
	}
	return ops
}

// hashRangeResults folds range replies into the stream hash.
func hashRangeResults(h *fnv64w, res []core.RangeResult[uint64, int64]) {
	for _, rr := range res {
		fmt.Fprintf(h.h, "r%d:%d:", rr.Count, rr.Reduced)
		for _, p := range rr.Pairs {
			fmt.Fprintf(h.h, "%d=%d;", p.Key, p.Value)
		}
	}
}

// fnv64w is a tiny wrapper so helpers share one hash stream.
type fnv64w struct {
	h interface{ Write([]byte) (int, error) }
}

// runClusterOracle drives the workload on a fault-free single Map and
// returns the reply-stream and final-structure hashes.
func runClusterOracle(ops []clusterWop) (replySum, structSum uint64) {
	m := core.New[uint64, int64](core.Config{P: 16, Seed: 0xC0FFEE}, core.Uint64Hash)
	defer m.Close()
	h := fnv.New64a()
	hw := &fnv64w{h: h}
	for _, w := range ops {
		switch w.kind {
		case 0:
			ins, _ := m.Upsert(w.keys, w.vals)
			for _, v := range ins {
				fmt.Fprintf(h, "u%v", v)
			}
		case 1:
			ok, _ := m.Delete(w.keys)
			for _, v := range ok {
				fmt.Fprintf(h, "d%v", v)
			}
		case 2:
			res, _ := m.Get(w.keys)
			for _, g := range res {
				fmt.Fprintf(h, "g%v:%v", g.Found, g.Value)
			}
		case 3:
			res, _ := m.Successor(w.keys)
			for _, s := range res {
				fmt.Fprintf(h, "s%v:%v:%v", s.Found, s.Key, s.Value)
			}
		case 4:
			res, _ := m.RangeAuto(w.rops)
			hashRangeResults(hw, res)
		}
	}
	replySum = h.Sum64()
	ks, vs, _ := m.Snapshot()
	sh := fnv.New64a()
	for i := range ks {
		fmt.Fprintf(sh, "%v=%v;", ks[i], vs[i])
	}
	return replySum, sh.Sum64()
}

// runClusterWorkload drives the workload on one cluster configuration.
func runClusterWorkload(shards, shardP int, ops []clusterWop, plans []core.FaultPlan) (clusterResult, uint64, uint64) {
	cfg := cluster.Config{
		Shards: shards,
		Seed:   0xC10C,
		Shard:  core.Config{P: shardP},
		Faults: plans,
	}
	c, err := cluster.New[uint64, int64](cfg, core.Uint64Hash)
	if err != nil {
		refuse("cluster: New(%d shards): %v", shards, err)
	}
	defer c.Close()
	h := fnv.New64a()
	hw := &fnv64w{h: h}
	var out clusterResult
	out.Shards = shards
	out.Batches = len(ops)
	start := time.Now()
	for i, w := range ops {
		var st cluster.Stats
		var errs []error
		var err error
		switch w.kind {
		case 0:
			var ins []bool
			ins, errs, st, err = c.TryUpsert(w.keys, w.vals)
			for _, v := range ins {
				fmt.Fprintf(h, "u%v", v)
			}
		case 1:
			var ok []bool
			ok, errs, st, err = c.TryDelete(w.keys)
			for _, v := range ok {
				fmt.Fprintf(h, "d%v", v)
			}
		case 2:
			var res []core.GetResult[int64]
			res, errs, st, err = c.TryGet(w.keys)
			for _, g := range res {
				fmt.Fprintf(h, "g%v:%v", g.Found, g.Value)
			}
		case 3:
			var res []core.SearchResult[uint64, int64]
			res, errs, st, err = c.TrySuccessor(w.keys)
			for _, s := range res {
				fmt.Fprintf(h, "s%v:%v:%v", s.Found, s.Key, s.Value)
			}
		case 4:
			var res []core.RangeResult[uint64, int64]
			res, errs, st, err = c.TryRangeOperation(w.rops)
			hashRangeResults(hw, res)
		}
		if err != nil {
			refuse("cluster: batch %d failed: %v", i, err)
		}
		for j, e := range errs {
			if e != nil {
				refuse("cluster: batch %d op %d degraded: %v (recovery must be transparent here)", i, j, e)
			}
		}
		out.MaxRounds += st.MaxRounds()
		out.MaxIOTime += st.MaxIOTime()
		out.TotalMsgs += st.TotalMsgs()
		out.TotalPIMWork += st.TotalPIMWork()
	}
	out.WallMs = float64(time.Since(start).Microseconds()) / 1000

	// Final structure via a cluster-wide ordered read.
	read := []core.RangeOp[uint64, int64]{{Lo: 0, Hi: 1 << 14, Kind: core.RangeRead}}
	res, errs, _, err := c.TryRangeOperation(read)
	if err != nil {
		refuse("cluster: final read: %v", err)
	}
	for _, e := range errs {
		if e != nil {
			refuse("cluster: final read degraded: %v", e)
		}
	}
	sh := fnv.New64a()
	for _, p := range res[0].Pairs {
		fmt.Fprintf(sh, "%v=%v;", p.Key, p.Value)
	}
	for i := 0; i < shards; i++ {
		ss := c.ShardStats(i)
		out.Kills += ss.Kills
		out.Recoveries += ss.Recoveries
		out.RecoveryRounds += ss.Recovery.Rounds
	}
	return out, h.Sum64(), sh.Sum64()
}

func runCluster(args []string) {
	f := fs("cluster")
	outPath := f.String("out", "results/BENCH_cluster.json", "JSON output file")
	label := f.String("label", "current", "entry label (an existing entry with the same label is replaced)")
	note := f.String("note", "", "free-form note stored with the entry")
	shardP := f.Int("p", 8, "modules per shard")
	batches := f.Int("batches", 100, "mixed batches per row")
	seed := f.Uint64("seed", 0x5EED, "fault-plan seed")
	smoke := f.Bool("smoke", false, "small CI ladder (1,2 shards, 24 batches), result not recorded")
	f.Parse(args)

	ladder := []int{1, 2, 4, 8}
	nBatches := *batches
	if *smoke {
		ladder = []int{1, 2}
		nBatches = 24
	}
	regimes := []struct {
		name string
		mk   func(shards int) []core.FaultPlan
	}{
		{"none", func(int) []core.FaultPlan { return nil }},
		{"chaos", func(shards int) []core.FaultPlan {
			plans := make([]core.FaultPlan, shards)
			for i := range plans {
				plans[i] = pim.ChaosPlan(*seed + uint64(i))
			}
			return plans
		}},
		{"chaos+kill", func(shards int) []core.FaultPlan {
			plans := make([]core.FaultPlan, shards)
			for i := range plans {
				plans[i] = pim.ChaosPlan(*seed + uint64(i))
			}
			// The last shard dies early and is rebuilt from its journal;
			// with one shard the whole "cluster" dies and recovers.
			plans[shards-1] = pim.KillPlan(50, plans[shards-1])
			return plans
		}},
	}

	ops := genClusterOps(nBatches)
	oracleReply, oracleStruct := runClusterOracle(ops)

	entry := clusterEntry{
		Label:      *label,
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		ShardP:     *shardP,
		Note:       *note,
	}
	tbl := newTable("shards", "plan", "maxRounds", "maxIO", "msgs", "kills", "rebuilds", "recRounds", "equiv", "wall ms")
	allEquivalent := true
	for _, shards := range ladder {
		for _, reg := range regimes {
			row, replySum, structSum := runClusterWorkload(shards, *shardP, ops, reg.mk(shards))
			row.Plan = reg.name
			row.Equivalent = replySum == oracleReply && structSum == oracleStruct
			allEquivalent = allEquivalent && row.Equivalent
			entry.Rows = append(entry.Rows, row)
			tbl.add(shards, reg.name, row.MaxRounds, row.MaxIOTime, row.TotalMsgs,
				row.Kills, row.Recoveries, row.RecoveryRounds, row.Equivalent, row.WallMs)
		}
	}
	tbl.print()

	if !allEquivalent {
		refuse("cluster: a cluster run diverged from the single-Map oracle; not recording")
	}
	if *smoke {
		fmt.Println("smoke run: not recorded")
		return
	}

	n, _, err := mergeBenchEntry(*outPath, "cluster",
		"one row = the fixed mixed workload on one (shard count, fault regime); equivalence vs a fault-free single Map",
		entry, func(e clusterEntry) string { return e.Label })
	if err != nil {
		refuse("cluster: %v", err)
	}
	fmt.Printf("wrote %s (%d entries, label %q)\n", *outPath, n, entry.Label)
}
