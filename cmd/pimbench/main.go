// Command pimbench regenerates every table and figure of "The
// Processing-in-Memory Model" (SPAA 2021) on the pimgo simulator.
//
// Usage:
//
//	pimbench <experiment> [flags]
//
// Experiments (see DESIGN.md §4 for the paper mapping):
//
//	model     Fig. 1  — the PIM machine and its cost metrics
//	fig2      Fig. 2  — pointer structure on a 4-module system
//	fig3      Fig. 3  — pivot search phases of batched Successor
//	fig4      Fig. 4  — batch insert/delete pointer construction
//	table1    Table 1 — measured cost of all batched point operations
//	space     Thm 3.1 — per-module space
//	lemma42   Lem 4.2 — per-node access contention, pivoted vs naive
//	balls     Lem 2.1/2.2 — balls-in-bins max/mean loads
//	imbalance §4.2    — naive vs pivoted Successor under the adversary
//	range     Thm 5.1/5.2 — broadcast vs tree range operations
//	baseline  §2.2/§3.1 — ours vs range-partitioned skip list
//	ablate    design ablations: -what=hlow|pivot|dedup
//	chaos     fault-injection recovery costs under every built-in plan
//	frontend  concurrent batching frontend: client-goroutine ladder
//	pipeline  pipelined batch execution: serial vs two-deep overlap
//	trace     per-phase metric attribution; -chrome exports a Chrome trace
//	all       every experiment in sequence
//
// `pimbench -list` prints every command name, one per line (used by the
// docs CI job to validate command references in the documentation).
package main

import (
	"flag"
	"fmt"
	"os"
)

type experiment struct {
	name string
	desc string
	run  func(args []string)
}

var experiments = []experiment{
	{"model", "Fig. 1: the PIM machine model and metrics", runModel},
	{"fig2", "Fig. 2: pointer structure on 4 modules", runFig2},
	{"fig3", "Fig. 3: pivot search phases", runFig3},
	{"fig4", "Fig. 4: batch insert/delete pointer construction", runFig4},
	{"table1", "Table 1: batched point-operation costs", runTable1},
	{"space", "Theorem 3.1: per-module space", runSpace},
	{"lemma42", "Lemma 4.2: per-node contention", runLemma42},
	{"balls", "Lemmas 2.1/2.2: balls-in-bins", runBalls},
	{"imbalance", "§4.2: naive vs pivoted Successor", runImbalance},
	{"range", "Theorems 5.1/5.2: range operations", runRange},
	{"baseline", "§2.2/§3.1: vs range partitioning", runBaseline},
	{"ablate", "design ablations (hlow, pivot, dedup)", runAblate},
	{"ext", "future-work companions: PIM sort, PIM hash map", runExt},
	{"sweep", "CSV metric grid over P×n for plotting", runSweep},
	{"why", "§1: data movement saved vs shared-memory emulation", runWhy},
	{"cpuscale", "§2.1: O(W/P'+D) with a real work-stealing pool", runCPUScale},
	{"roundengine", "round-engine microbenchmarks → results/BENCH_roundengine.json", runRoundEngine},
	{"batchengine", "steady-state batch-op benchmarks → results/BENCH_batchengine.json", runBatchEngine},
	{"chaos", "fault-injection recovery costs → results/BENCH_chaos.json", runChaos},
	{"frontend", "concurrent batching frontend ladder → results/BENCH_frontend.json", runFrontend},
	{"pipeline", "pipelined batch execution vs serial → results/BENCH_pipeline.json", runPipeline},
	{"cluster", "sharded multi-Map cluster ladder → results/BENCH_cluster.json", runCluster},
	{"rebalance", "live shard split/merge rebalancing ladder → results/BENCH_rebalance.json", runRebalance},
	{"clusterfrontend", "coalescing frontend over the elastic cluster, rebalance loop live → results/BENCH_clusterfrontend.json", runClusterFrontend},
	{"trace", "per-phase metric attribution → results/BENCH_trace.json (-chrome exports Chrome trace JSON)", runTrace},
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	name := os.Args[1]
	args := os.Args[2:]
	if name == "-list" || name == "--list" {
		// Machine-readable command list, one name per line ("all" included).
		// The docs CI job uses it to verify every `pimbench <cmd>` named in
		// the documentation exists.
		for _, e := range experiments {
			fmt.Println(e.name)
		}
		fmt.Println("all")
		return
	}
	if name == "all" {
		for _, e := range experiments {
			fmt.Printf("\n================ %s — %s ================\n", e.name, e.desc)
			e.run(nil)
		}
		return
	}
	for _, e := range experiments {
		if e.name == name {
			e.run(args)
			return
		}
	}
	fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
	usage()
	os.Exit(2)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: pimbench <experiment> [flags]")
	fmt.Fprintln(os.Stderr, "experiments:")
	for _, e := range experiments {
		fmt.Fprintf(os.Stderr, "  %-10s %s\n", e.name, e.desc)
	}
	fmt.Fprintln(os.Stderr, "  all        run everything")
}

// fs builds a named FlagSet that exits on error.
func fs(name string) *flag.FlagSet {
	f := flag.NewFlagSet(name, flag.ExitOnError)
	return f
}
