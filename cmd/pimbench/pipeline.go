package main

// `pimbench pipeline` measures the two-deep batch execution pipeline
// (pimgo.Pipeline): a ladder of batch shapes, each run once serially
// (Into-variant direct batches) and once pipelined (windowed Submit/Wait,
// two batches in flight), on identically seeded Maps. Every result and
// BatchStats is FNV-folded in both modes; a hash mismatch means the
// pipeline broke its bit-identity contract and the run refuses to record,
// like `pimbench chaos`. A third, untimed instrumented run collects the
// pipeline's own scheduling telemetry (prep/wait/exec, overlap fraction)
// through a TraceProfile. Results accumulate in results/BENCH_pipeline.json.

import (
	"fmt"
	"runtime"
	"time"

	"pimgo/internal/cluster"
	"pimgo/internal/core"
	"pimgo/internal/rng"
	"pimgo/internal/trace"
)

// pipeBenchShape is one ladder rung's workload shape.
type pipeBenchShape struct {
	name string
	mix  string // "get", "succ", "upsert", "mixed"
	b    int    // batch size
	nb   int    // batch count
}

// pipelineRung is one shape's measurement.
type pipelineRung struct {
	// Layer is "core" (Map driven through pimgo.Pipeline) or "cluster"
	// (4-shard Cluster driven through pimgo.ClusterPipeline).
	Layer   string `json:"layer"`
	Shape   string `json:"shape"`
	B       int    `json:"b"`
	Batches int    `json:"batches"`
	Ops     int64  `json:"ops"`
	// Wall time of the two timed runs and the resulting speedup.
	SerialMs      float64 `json:"serial_ms"`
	PipelinedMs   float64 `json:"pipelined_ms"`
	Speedup       float64 `json:"speedup"`
	SerialOpsPerS float64 `json:"serial_ops_per_s"`
	PipeOpsPerS   float64 `json:"pipelined_ops_per_s"`
	// Scheduling telemetry from the untimed instrumented run (core layer
	// only; zero for cluster rungs): submitter prep wall time, executor wait
	// (a positive wait means the prep overlapped an earlier batch's rounds),
	// executor exec wall time, and the fraction of batches that overlapped.
	PrepMs      float64 `json:"prep_ms"`
	WaitMs      float64 `json:"wait_ms"`
	ExecMs      float64 `json:"exec_ms"`
	OverlapFrac float64 `json:"overlap_frac"`
	// IdealSpeedup is the speedup trace attribution predicts on hardware
	// with a core to spare: (prep+exec)/max(prep,exec), the two-deep
	// pipeline's ceiling. On a single-core host the measured Speedup is
	// bounded at ~1.0 regardless (docs/PIPELINE.md §When overlap helps).
	IdealSpeedup float64 `json:"ideal_speedup"`
	// ResultHash folds every reply and BatchStats of the serial run;
	// Equivalent records that the pipelined run folded to the same hash.
	ResultHash uint64 `json:"result_hash"`
	Equivalent bool   `json:"equivalent"`
}

// pipelineEntry is one labeled run of the ladder.
type pipelineEntry struct {
	Label      string         `json:"label"`
	Date       string         `json:"date"`
	GoVersion  string         `json:"go"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	P          int            `json:"p"`
	Prefill    int            `json:"prefill"`
	Note       string         `json:"note,omitempty"`
	Rungs      []pipelineRung `json:"rungs"`
}

// Batch kinds of the pipeline bench (mixed cycles through all four).
const (
	pbGet = iota
	pbSucc
	pbUpsert
	pbDelete
)

// pipeBenchKind maps batch index to op kind for a shape.
func pipeBenchKind(mix string, i int) int {
	switch mix {
	case "get":
		return pbGet
	case "succ":
		return pbSucc
	case "upsert":
		return pbUpsert
	default:
		return []int{pbUpsert, pbGet, pbSucc, pbDelete}[i%4]
	}
}

// pipeBenchBatches pregenerates the shape's key batches outside the timed
// region. Upserts draw from the prefilled keys (the steady-state update
// path, so the structure neither grows nor skews between modes); deletes
// churn a private dense region; reads probe the full key space.
func pipeBenchBatches(shape pipeBenchShape, prefill []uint64, seed uint64) ([][]uint64, []int) {
	r := rng.NewXoshiro256(seed)
	const churnBase = keySpace + 1
	batches := make([][]uint64, shape.nb)
	kinds := make([]int, shape.nb)
	for i := range batches {
		kinds[i] = pipeBenchKind(shape.mix, i)
		b := make([]uint64, shape.b)
		for j := range b {
			switch kinds[i] {
			case pbUpsert:
				b[j] = prefill[r.Uint64n(uint64(len(prefill)))]
			case pbDelete:
				b[j] = churnBase + r.Uint64n(1<<16)
			default:
				b[j] = 1 + r.Uint64n(keySpace)
			}
		}
		batches[i] = b
	}
	return batches, kinds
}

// pipeBenchMap builds one mode's Map: identical seed and prefill for the
// serial, pipelined, and instrumented runs, so replies must be identical.
func pipeBenchMap(p int, prefill []uint64) *core.Map[uint64, int64] {
	m := core.New[uint64, int64](core.Config{P: p, Seed: 0xC0FFEE}, core.Uint64Hash)
	benchLoadShared(m, prefill)
	return m
}

// foldGetResults, foldSearchResults, foldBools, foldBatchStats fold one
// batch's observables into the running FNV hash — identical code on the
// serial and pipelined paths, so any divergence flips the final hash.
func foldGetResults(h uint64, res []core.GetResult[int64]) uint64 {
	for i := range res {
		if res[i].Found {
			h = fnvMix(h, uint64(res[i].Value)|1<<63)
		} else {
			h = fnvMix(h, 5)
		}
	}
	return h
}

func foldSearchResults(h uint64, res []core.SearchResult[uint64, int64]) uint64 {
	for i := range res {
		if res[i].Found {
			h = fnvMix(h, res[i].Key)
			h = fnvMix(h, uint64(res[i].Value))
		} else {
			h = fnvMix(h, 7)
		}
	}
	return h
}

func foldBools(h uint64, res []bool) uint64 {
	for _, b := range res {
		if b {
			h = fnvMix(h, 1)
		} else {
			h = fnvMix(h, 2)
		}
	}
	return h
}

func foldBatchStats(h uint64, st core.BatchStats) uint64 {
	h = fnvMix(h, uint64(st.Batch))
	h = fnvMix(h, uint64(st.Rounds))
	h = fnvMix(h, uint64(st.IOTime))
	h = fnvMix(h, uint64(st.TotalMsgs))
	h = fnvMix(h, uint64(st.PIMTime))
	h = fnvMix(h, uint64(st.CPUWork))
	return h
}

// runPipeBenchSerial drives the schedule as direct Into-variant batches.
func runPipeBenchSerial(m *core.Map[uint64, int64], batches [][]uint64, kinds []int, vals []int64) (uint64, time.Duration) {
	var gdst []core.GetResult[int64]
	var sdst []core.SearchResult[uint64, int64]
	var bdst []bool
	h := uint64(fnvOffset)
	start := time.Now()
	for i, b := range batches {
		var st core.BatchStats
		switch kinds[i] {
		case pbGet:
			gdst, st = m.GetInto(b, gdst)
			h = foldGetResults(h, gdst)
		case pbSucc:
			sdst, st = m.SuccessorInto(b, sdst)
			h = foldSearchResults(h, sdst)
		case pbUpsert:
			bdst, st = m.UpsertInto(b, vals[:len(b)], bdst)
			h = foldBools(h, bdst)
		case pbDelete:
			bdst, st = m.DeleteInto(b, bdst)
			h = foldBools(h, bdst)
		}
		h = foldBatchStats(h, st)
	}
	return h, time.Since(start)
}

// runPipeBenchPipelined drives the same schedule through a Pipeline with a
// two-deep window: batch k+1 is submitted (its CPU prefix runs on this
// goroutine) before batch k's ticket is awaited, so prep overlaps rounds.
// Result buffers alternate per slot parity; the fold runs between Wait and
// the next Submit, mirroring the serial loop's fold placement.
func runPipeBenchPipelined(m *core.Map[uint64, int64], batches [][]uint64, kinds []int, vals []int64) (uint64, time.Duration) {
	p := core.NewPipeline(m)
	defer p.Close()
	var gdst [2][]core.GetResult[int64]
	var sdst [2][]core.SearchResult[uint64, int64]
	var bdst [2][]bool
	h := uint64(fnvOffset)

	submit := func(i int) *core.PipeTicket[uint64, int64] {
		s := i % 2
		switch kinds[i] {
		case pbGet:
			return p.SubmitGet(batches[i], gdst[s])
		case pbSucc:
			return p.SubmitSuccessor(batches[i], sdst[s])
		case pbUpsert:
			return p.SubmitUpsert(batches[i], vals[:len(batches[i])], bdst[s])
		default:
			return p.SubmitDelete(batches[i], bdst[s])
		}
	}
	settle := func(i int, tk *core.PipeTicket[uint64, int64]) {
		res := tk.Wait()
		if res.Err != nil {
			refuse("pipeline: batch %d failed: %v", i, res.Err)
		}
		s := i % 2
		switch kinds[i] {
		case pbGet:
			gdst[s] = res.Gets
			h = foldGetResults(h, res.Gets)
		case pbSucc:
			sdst[s] = res.Searches
			h = foldSearchResults(h, res.Searches)
		default:
			bdst[s] = res.Bools
			h = foldBools(h, res.Bools)
		}
		h = foldBatchStats(h, res.Stats)
	}

	start := time.Now()
	var pending *core.PipeTicket[uint64, int64]
	for i := range batches {
		tk := submit(i)
		if pending != nil {
			settle(i-1, pending)
		}
		pending = tk
	}
	if pending != nil {
		settle(len(batches)-1, pending)
	}
	wall := time.Since(start)
	return h, wall
}

// runPipeBenchInstrumented repeats the pipelined schedule, untimed, with a
// TraceProfile installed to read back the pipeline's scheduling totals.
func runPipeBenchInstrumented(p int, prefill []uint64, batches [][]uint64, kinds []int, vals []int64) trace.PipelineTotals {
	m := pipeBenchMap(p, prefill)
	defer m.Close()
	prof := trace.NewProfile()
	m.SetTraceSink(prof)
	runPipeBenchPipelined(m, batches, kinds, vals)
	return prof.Pipeline()
}

// pipeBenchCluster builds one mode's 4-shard cluster, prefilled identically.
func pipeBenchCluster(prefill []uint64) *cluster.Cluster[uint64, int64] {
	c, err := cluster.New[uint64, int64](cluster.Config{
		Shards: 4,
		Seed:   0xC0FFEE,
		Shard:  core.Config{P: 4},
	}, core.Uint64Hash)
	if err != nil {
		refuse("pipeline: cluster: %v", err)
	}
	const chunk = 1 << 15
	vals := make([]int64, 0, chunk)
	for off := 0; off < len(prefill); off += chunk {
		end := min(off+chunk, len(prefill))
		vals = vals[:end-off]
		for i, k := range prefill[off:end] {
			vals[i] = int64(k)
		}
		if _, _, _, err := c.TryUpsert(prefill[off:end], vals); err != nil {
			refuse("pipeline: cluster prefill: %v", err)
		}
	}
	return c
}

// foldClusterStats folds a cluster batch's Stats (per-shard BatchStats plus
// batch size and recoveries) into the running hash.
func foldClusterStats(h uint64, st cluster.Stats) uint64 {
	h = fnvMix(h, uint64(st.Batch))
	h = fnvMix(h, uint64(st.Recovered))
	for _, ss := range st.Shards {
		h = foldBatchStats(h, ss)
	}
	return h
}

// foldErrs folds a per-key error surface (nil/non-nil pattern).
func foldErrs(h uint64, errs []error) uint64 {
	if errs == nil {
		return fnvMix(h, 11)
	}
	for _, e := range errs {
		if e == nil {
			h = fnvMix(h, 0)
		} else {
			h = fnvMix(h, 13)
		}
	}
	return h
}

// runPipeBenchClusterSerial drives the schedule through the serial Try*
// cluster entry points.
func runPipeBenchClusterSerial(c *cluster.Cluster[uint64, int64], batches [][]uint64, kinds []int, vals []int64) (uint64, time.Duration) {
	h := uint64(fnvOffset)
	start := time.Now()
	for i, b := range batches {
		switch kinds[i] {
		case pbGet:
			res, errs, st, err := c.TryGet(b)
			if err != nil {
				refuse("pipeline: cluster serial Get: %v", err)
			}
			h = foldGetResults(h, res)
			h = foldErrs(h, errs)
			h = foldClusterStats(h, st)
		case pbSucc:
			res, errs, st, err := c.TrySuccessor(b)
			if err != nil {
				refuse("pipeline: cluster serial Successor: %v", err)
			}
			h = foldSearchResults(h, res)
			h = foldErrs(h, errs)
			h = foldClusterStats(h, st)
		case pbUpsert:
			res, errs, st, err := c.TryUpsert(b, vals[:len(b)])
			if err != nil {
				refuse("pipeline: cluster serial Upsert: %v", err)
			}
			h = foldBools(h, res)
			h = foldErrs(h, errs)
			h = foldClusterStats(h, st)
		case pbDelete:
			res, errs, st, err := c.TryDelete(b)
			if err != nil {
				refuse("pipeline: cluster serial Delete: %v", err)
			}
			h = foldBools(h, res)
			h = foldErrs(h, errs)
			h = foldClusterStats(h, st)
		}
	}
	return h, time.Since(start)
}

// runPipeBenchClusterPipelined drives the same schedule through a
// ClusterPipeline with the same two-deep window as the core runner.
func runPipeBenchClusterPipelined(c *cluster.Cluster[uint64, int64], batches [][]uint64, kinds []int, vals []int64) (uint64, time.Duration) {
	p, err := cluster.NewClusterPipeline(c)
	if err != nil {
		refuse("pipeline: cluster pipeline: %v", err)
	}
	defer p.Close()
	h := uint64(fnvOffset)

	submit := func(i int) *cluster.ClusterTicket[uint64, int64] {
		switch kinds[i] {
		case pbGet:
			return p.SubmitGet(batches[i])
		case pbSucc:
			return p.SubmitSuccessor(batches[i])
		case pbUpsert:
			return p.SubmitUpsert(batches[i], vals[:len(batches[i])])
		default:
			return p.SubmitDelete(batches[i])
		}
	}
	settle := func(i int, tk *cluster.ClusterTicket[uint64, int64]) {
		res := tk.Wait()
		if res.Err != nil {
			refuse("pipeline: cluster batch %d failed: %v", i, res.Err)
		}
		switch kinds[i] {
		case pbGet:
			h = foldGetResults(h, res.Gets)
		case pbSucc:
			h = foldSearchResults(h, res.Searches)
		default:
			h = foldBools(h, res.Bools)
		}
		h = foldErrs(h, res.Errs)
		h = foldClusterStats(h, res.Stats)
	}

	start := time.Now()
	var pending *cluster.ClusterTicket[uint64, int64]
	for i := range batches {
		tk := submit(i)
		if pending != nil {
			settle(i-1, pending)
		}
		pending = tk
	}
	if pending != nil {
		settle(len(batches)-1, pending)
	}
	return h, time.Since(start)
}

func runPipeline(args []string) {
	f := fs("pipeline")
	outPath := f.String("out", "results/BENCH_pipeline.json", "JSON output file")
	label := f.String("label", "current", "entry label (an existing entry with the same label is replaced)")
	note := f.String("note", "", "free-form note stored with the entry")
	p := f.Int("p", 16, "module count")
	prefillN := f.Int("prefill", 1<<17, "prefilled key count (the steady-state structure size)")
	smoke := f.Bool("smoke", false, "small CI ladder, result not recorded")
	f.Parse(args)

	shapes := []pipeBenchShape{
		{"get/4k", "get", 4096, 48},
		{"succ/4k", "succ", 4096, 48},
		{"upsert/4k", "upsert", 4096, 48},
		{"mixed/2k", "mixed", 2048, 64},
		{"succ/16k", "succ", 16384, 16},
	}
	clusterShapes := []pipeBenchShape{
		{"get/4k", "get", 4096, 32},
		{"mixed/2k", "mixed", 2048, 48},
	}
	if *smoke {
		shapes = []pipeBenchShape{
			{"get/512", "get", 512, 8},
			{"succ/512", "succ", 512, 8},
			{"mixed/512", "mixed", 512, 8},
		}
		clusterShapes = []pipeBenchShape{
			{"mixed/512", "mixed", 512, 8},
		}
	}

	prefill := make([]uint64, *prefillN)
	r := rng.NewXoshiro256(0xF111)
	for i := range prefill {
		prefill[i] = 1 + r.Uint64n(keySpace)
	}
	maxB := 0
	for _, s := range shapes {
		maxB = max(maxB, s.b)
	}
	vals := make([]int64, maxB)
	for i := range vals {
		vals[i] = int64(i)
	}

	entry := pipelineEntry{
		Label:      *label,
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		P:          *p,
		Prefill:    *prefillN,
		Note:       *note,
	}

	tbl := newTable("layer", "shape", "ops", "serial ms", "pipe ms", "speedup", "prep ms", "exec ms", "ideal", "equiv")
	allEquivalent := true
	for si, shape := range shapes {
		batches, kinds := pipeBenchBatches(shape, prefill, 0xB197^uint64(si)*0x9E3779B97F4A7C15)
		ops := int64(shape.b) * int64(shape.nb)

		ms := pipeBenchMap(*p, prefill)
		serialHash, serialWall := runPipeBenchSerial(ms, batches, kinds, vals)
		ms.Close()

		runtime.GC() // don't bill the serial phase's garbage to the pipeline
		mp := pipeBenchMap(*p, prefill)
		pipeHash, pipeWall := runPipeBenchPipelined(mp, batches, kinds, vals)
		mp.Close()

		totals := runPipeBenchInstrumented(*p, prefill, batches, kinds, vals)
		prepS, execS := totals.Prep.Seconds(), totals.Exec.Seconds()
		ideal := 0.0
		if m := max(prepS, execS); m > 0 {
			ideal = (prepS + execS) / m
		}

		equiv := serialHash == pipeHash
		allEquivalent = allEquivalent && equiv
		rung := pipelineRung{
			Layer:         "core",
			Shape:         shape.name,
			B:             shape.b,
			Batches:       shape.nb,
			Ops:           ops,
			SerialMs:      float64(serialWall.Microseconds()) / 1000,
			PipelinedMs:   float64(pipeWall.Microseconds()) / 1000,
			Speedup:       serialWall.Seconds() / pipeWall.Seconds(),
			SerialOpsPerS: float64(ops) / serialWall.Seconds(),
			PipeOpsPerS:   float64(ops) / pipeWall.Seconds(),
			PrepMs:        float64(totals.Prep.Microseconds()) / 1000,
			WaitMs:        float64(totals.Wait.Microseconds()) / 1000,
			ExecMs:        float64(totals.Exec.Microseconds()) / 1000,
			OverlapFrac:   totals.OverlapFraction(),
			IdealSpeedup:  ideal,
			ResultHash:    serialHash,
			Equivalent:    equiv,
		}
		entry.Rungs = append(entry.Rungs, rung)
		tbl.add("core", shape.name, ops, rung.SerialMs, rung.PipelinedMs, rung.Speedup,
			rung.PrepMs, rung.ExecMs, fmt.Sprintf("%.2fx", ideal), equiv)
	}
	for si, shape := range clusterShapes {
		batches, kinds := pipeBenchBatches(shape, prefill, 0xC197^uint64(si)*0x9E3779B97F4A7C15)
		ops := int64(shape.b) * int64(shape.nb)

		cs := pipeBenchCluster(prefill)
		serialHash, serialWall := runPipeBenchClusterSerial(cs, batches, kinds, vals)
		cs.Close()

		runtime.GC()
		cp := pipeBenchCluster(prefill)
		pipeHash, pipeWall := runPipeBenchClusterPipelined(cp, batches, kinds, vals)
		cp.Close()

		equiv := serialHash == pipeHash
		allEquivalent = allEquivalent && equiv
		rung := pipelineRung{
			Layer:         "cluster",
			Shape:         shape.name,
			B:             shape.b,
			Batches:       shape.nb,
			Ops:           ops,
			SerialMs:      float64(serialWall.Microseconds()) / 1000,
			PipelinedMs:   float64(pipeWall.Microseconds()) / 1000,
			Speedup:       serialWall.Seconds() / pipeWall.Seconds(),
			SerialOpsPerS: float64(ops) / serialWall.Seconds(),
			PipeOpsPerS:   float64(ops) / pipeWall.Seconds(),
			ResultHash:    serialHash,
			Equivalent:    equiv,
		}
		entry.Rungs = append(entry.Rungs, rung)
		tbl.add("cluster", shape.name, ops, rung.SerialMs, rung.PipelinedMs, rung.Speedup,
			"-", "-", "-", equiv)
	}
	tbl.print()

	if !allEquivalent {
		refuse("pipeline: pipelined result hash diverged from serial; not recording")
	}
	if *smoke {
		fmt.Println("smoke run: not recorded")
		return
	}

	n, _, err := mergeBenchEntry(*outPath, "pipeline",
		"one row = a batch shape run serially then pipelined on identically seeded Maps; speedup = serial wall / pipelined wall",
		entry, func(e pipelineEntry) string { return e.Label })
	if err != nil {
		refuse("pipeline: %v", err)
	}
	fmt.Printf("wrote %s (%d entries, label %q)\n", *outPath, n, entry.Label)
}
