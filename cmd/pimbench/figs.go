package main

import (
	"fmt"

	"pimgo/internal/core"
)

// runModel prints the Fig. 1 machine description and the metric
// definitions the simulator implements.
func runModel(args []string) {
	fmt.Print(`Fig. 1 — the PIM model (implemented by internal/pim + internal/cpu):

    CPU side                          PIM side
  +------------------+   network   +--------------------------+
  | parallel cores   | <=========> | P modules, each:         |
  | shared memory M  |  bulk-sync  |   1 core                 |
  | (words)          |   rounds    |   Θ(n/P)-word local mem  |
  +------------------+             +--------------------------+

Metrics measured per batch (core.BatchStats):
  CPU work    Σ work over CPU strands           (cpu.Tracker)
  CPU depth   critical path, binary forking     (cpu.Tracker)
  PIM time    max total local work per module   (pim.Machine)
  IO time     Σ_rounds max per-module messages  (h-relations)
  rounds      bulk-synchronous rounds; sync cost = rounds·log P
  min M       peak CPU shared-memory words declared by the batch

PIM-balance (§2.1): an algorithm is PIM-balanced when
  PIM time = O(TotalPIMWork / P)  and  IO time = O(TotalMsgs / P).
`)
}

// runFig2 rebuilds the paper's Fig. 2 instance: keys {0,2,6,7,15,20,25,33}
// on a 4-module system, and renders the solid (level lists) and dashed
// (local leaf lists, next-leaf) pointers.
func runFig2(args []string) {
	cfg := core.Config{P: 4, Seed: 21}
	m := core.New[uint64, int64](cfg, core.Uint64Hash)
	keys := []uint64{0, 2, 6, 7, 15, 20, 25, 33}
	vals := make([]int64, len(keys))
	for i := range vals {
		vals[i] = int64(keys[i]) * 10
	}
	m.Upsert(keys, vals)
	if err := m.CheckInvariants(); err != nil {
		panic(err)
	}
	fmt.Println("Fig. 2 — pointer structure, P = 4, keys {0,2,6,7,15,20,25,33}")
	fmt.Println("(tower heights are seed-dependent; @U marks replicated upper-part nodes)")
	fmt.Println()
	fmt.Print(m.RenderStructure())
	fmt.Println("\nDashed pointers (local leaf lists and next-leaf):")
	fmt.Print(m.RenderLocalLists())
}

// runFig3 shows the stage-1 pivot phases of a batched Successor: the
// divide-and-conquer order and the start hint of every pivot (root /
// direct / lowest-common-ancestor level).
func runFig3(args []string) {
	m, g := buildMapAnchored(8, 1<<10, 0xF3, func(c *core.Config) { c.TracePhases = true })
	keys := g.Batch("uniform", 8*lg(8)*lg(8))
	_, st := m.Successor(keys)
	fmt.Println("Fig. 3 — pivot phases of batched Successor (P=8, batch", len(keys), ")")
	fmt.Println("stats:", st.String())
	fmt.Println()
	for i, ph := range m.LastPhases() {
		fmt.Printf("phase %d: %d pivots\n", i, len(ph.Pivots))
		for j, pv := range ph.Pivots {
			fmt.Printf("  pivot rank %4d  start: %s\n", pv, ph.Hints[j])
		}
	}
}

// runFig4 shows batch insert and batch delete pointer surgery on a small
// instance (before / after structures), the operation Fig. 4 illustrates.
func runFig4(args []string) {
	cfg := core.Config{P: 4, Seed: 17}
	m := core.New[uint64, int64](cfg, core.Uint64Hash)
	m.Upsert([]uint64{0, 6, 25}, []int64{0, 60, 250})
	fmt.Println("Fig. 4 — batch Insert/Delete pointer construction (P = 4)")
	fmt.Println("\nBefore (white nodes {0, 6, 25}):")
	fmt.Print(m.RenderStructure())

	// Batch-insert the figure's blue nodes {7, 20}; consecutive new nodes
	// must be chained to each other (Algorithm 1) where they share pred/succ.
	m.Upsert([]uint64{7, 20}, []int64{70, 200})
	if err := m.CheckInvariants(); err != nil {
		panic(err)
	}
	fmt.Println("\nAfter batch Insert {7, 20} (Algorithm 1 linked the new chain):")
	fmt.Print(m.RenderStructure())

	// Batch-delete them again; the green pointers of Fig. 4 are the splices
	// computed by CPU-side list contraction.
	m.Delete([]uint64{7, 20})
	if err := m.CheckInvariants(); err != nil {
		panic(err)
	}
	fmt.Println("\nAfter batch Delete {7, 20} (list contraction respliced):")
	fmt.Print(m.RenderStructure())
}
