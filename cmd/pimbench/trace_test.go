package main

import (
	"encoding/json"
	"os"
	"testing"
)

// TestRunTrace smoke-tests the trace subcommand end to end: the BENCH JSON
// must parse, carry the per-op attribution, and the -chrome export must be
// a valid JSON document.
func TestRunTrace(t *testing.T) {
	dir := t.TempDir()
	out := dir + "/bench.json"
	chrome := dir + "/chrome.json"
	quiet(t, func() {
		runTrace([]string{"-out", out, "-chrome", chrome,
			"-p", "4", "-n", "512", "-batches", "6", "-label", "a"})
	})

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		Entries []struct {
			Label  string `json:"label"`
			Rounds int64  `json:"rounds"`
			Ops    []struct {
				Op      string `json:"op"`
				Batches int    `json:"batches"`
			} `json:"ops"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(file.Entries) != 1 {
		t.Fatalf("got %d entries, want 1", len(file.Entries))
	}
	e := file.Entries[0]
	if e.Rounds <= 0 {
		t.Errorf("rounds = %d, want > 0", e.Rounds)
	}
	if len(e.Ops) == 0 {
		t.Fatal("entry has no per-op profiles")
	}
	seen := map[string]bool{}
	for _, op := range e.Ops {
		if op.Batches <= 0 {
			t.Errorf("op %q has %d batches, want > 0", op.Op, op.Batches)
		}
		seen[op.Op] = true
	}
	if !seen["upsert"] || !seen["get"] {
		t.Errorf("ops = %v, want at least upsert and get", seen)
	}

	cdata, err := os.ReadFile(chrome)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(cdata, &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome export has no events")
	}

	// Chaos mode must still satisfy the decomposition invariant: a
	// violation makes runTrace exit(1), killing the test binary.
	quiet(t, func() {
		runTrace([]string{"-out", out, "-p", "4", "-n", "512",
			"-batches", "6", "-chaos", "-label", "b"})
	})
	data, err = os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatalf("output after chaos run is not valid JSON: %v", err)
	}
	if len(file.Entries) != 2 {
		t.Fatalf("got %d entries after chaos run, want 2", len(file.Entries))
	}
}
