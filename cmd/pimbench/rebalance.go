package main

// `pimbench rebalance` is the live-rebalancing ladder: the cluster ladder's
// deterministic mixed workload runs against clusters that split and merge
// shards every few batches — the slot-heaviest shard splits, then the two
// slot-lightest merge, alternating — under three fault regimes (fault-free,
// chaos on every shard, chaos plus permanent shard kills). The reply stream
// and final structure must hash identically to the fault-free single-Map
// oracle's: an epoch cutover is invisible to callers or the run refuses to
// record and exits non-zero. Each row also records what the migrations
// cost: slots and keys moved, journal-suffix batches replayed at cutover,
// build retries consumed by faults, and the rounds charged to the
// per-shard Migration accounts. One labeled entry accumulates per run in
// results/BENCH_rebalance.json.

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"time"

	"pimgo/internal/cluster"
	"pimgo/internal/core"
	"pimgo/internal/pim"
)

// rebalanceResult is one (shards, regime) row in one entry.
type rebalanceResult struct {
	Shards  int     `json:"shards"`
	Plan    string  `json:"plan"`
	Batches int     `json:"batches"`
	WallMs  float64 `json:"wall_ms"`
	// Workload cost, as in the cluster ladder: per-batch slowest-shard
	// metrics summed, plus cluster-wide totals.
	MaxRounds    int64 `json:"max_rounds"`
	MaxIOTime    int64 `json:"max_io_time"`
	TotalMsgs    int64 `json:"total_msgs"`
	TotalPIMWork int64 `json:"total_pim_work"`
	// Migration accounting: published cutovers, routing slots and keys
	// moved, distinct journal-suffix batches replayed at cutover, build
	// retries burned by faults, and the rounds charged to the per-shard
	// Migration accounts. FinalEpoch must equal Migrations; FinalShards
	// counts the roster at the end (retired ids included).
	Migrations      int   `json:"migrations"`
	SlotsMoved      int   `json:"slots_moved"`
	KeysCopied      int   `json:"keys_copied"`
	SuffixBatches   int   `json:"suffix_batches"`
	Retries         int   `json:"retries"`
	MigrationRounds int64 `json:"migration_rounds"`
	FinalEpoch      int64 `json:"final_epoch"`
	FinalShards     int   `json:"final_shards"`
	// Equivalent records that the reply stream and final structure hashed
	// identically to the single-Map oracle's across every cutover.
	Equivalent bool `json:"equivalent"`
}

// rebalanceEntry is one labeled run of the ladder.
type rebalanceEntry struct {
	Label      string            `json:"label"`
	Date       string            `json:"date"`
	GoVersion  string            `json:"go"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	ShardP     int               `json:"shard_p"`
	Every      int               `json:"migrate_every"`
	Note       string            `json:"note,omitempty"`
	Rows       []rebalanceResult `json:"rows"`
}

// pickSplit returns the Running shard owning the most routing slots (ties
// to the lowest id), or -1 if none owns two.
func pickSplit(loads []cluster.ShardLoad) int {
	src, best := -1, 1
	for _, l := range loads {
		if l.State == cluster.ShardRunning && l.Slots > best {
			src, best = l.Shard, l.Slots
		}
	}
	return src
}

// pickMerge returns the two slot-lightest Running shards (src the lightest,
// dst the second), or (-1, -1) when fewer than three are active — merging
// below two shards would collapse the cluster.
func pickMerge(loads []cluster.ShardLoad) (src, dst int) {
	src, dst = -1, -1
	var srcSlots, dstSlots int
	active := 0
	for _, l := range loads {
		if l.State != cluster.ShardRunning || l.Slots == 0 {
			continue
		}
		active++
		switch {
		case src < 0 || l.Slots < srcSlots:
			dst, dstSlots = src, srcSlots
			src, srcSlots = l.Shard, l.Slots
		case dst < 0 || l.Slots < dstSlots:
			dst, dstSlots = l.Shard, l.Slots
		}
	}
	if active < 3 {
		return -1, -1
	}
	return src, dst
}

// runRebalanceWorkload drives the workload on one elastic cluster, migrating
// every `every` batches.
func runRebalanceWorkload(shards, shardP, every int, ops []clusterWop, plans []core.FaultPlan) (rebalanceResult, uint64, uint64) {
	cfg := cluster.Config{
		Shards: shards,
		Slots:  64,
		Seed:   0xC10C,
		Shard:  core.Config{P: shardP},
		Faults: plans,
		// Unbounded recovery: a shard killed mid-migration rolls forward
		// from its journal instead of failing the cutover.
		MaxRecoveries: -1,
	}
	c, err := cluster.New[uint64, int64](cfg, core.Uint64Hash)
	if err != nil {
		refuse("rebalance: New(%d shards): %v", shards, err)
	}
	defer c.Close()
	h := fnv.New64a()
	hw := &fnv64w{h: h}
	var out rebalanceResult
	out.Shards = shards
	out.Batches = len(ops)
	start := time.Now()
	addMigration := func(rep cluster.MigrationReport) {
		out.Migrations++
		out.SlotsMoved += rep.SlotsMoved
		out.KeysCopied += rep.KeysCopied
		out.SuffixBatches += rep.SuffixBatches
		out.Retries += rep.Retries
	}
	for i, w := range ops {
		var st cluster.Stats
		var errs []error
		var err error
		switch w.kind {
		case 0:
			var ins []bool
			ins, errs, st, err = c.TryUpsert(w.keys, w.vals)
			for _, v := range ins {
				fmt.Fprintf(h, "u%v", v)
			}
		case 1:
			var ok []bool
			ok, errs, st, err = c.TryDelete(w.keys)
			for _, v := range ok {
				fmt.Fprintf(h, "d%v", v)
			}
		case 2:
			var res []core.GetResult[int64]
			res, errs, st, err = c.TryGet(w.keys)
			for _, g := range res {
				fmt.Fprintf(h, "g%v:%v", g.Found, g.Value)
			}
		case 3:
			var res []core.SearchResult[uint64, int64]
			res, errs, st, err = c.TrySuccessor(w.keys)
			for _, s := range res {
				fmt.Fprintf(h, "s%v:%v:%v", s.Found, s.Key, s.Value)
			}
		case 4:
			var res []core.RangeResult[uint64, int64]
			res, errs, st, err = c.TryRangeOperation(w.rops)
			hashRangeResults(hw, res)
		}
		if err != nil {
			refuse("rebalance: batch %d failed: %v", i, err)
		}
		for j, e := range errs {
			if e != nil {
				refuse("rebalance: batch %d op %d degraded: %v (cutover must be transparent)", i, j, e)
			}
		}
		out.MaxRounds += st.MaxRounds()
		out.MaxIOTime += st.MaxIOTime()
		out.TotalMsgs += st.TotalMsgs()
		out.TotalPIMWork += st.TotalPIMWork()

		// Elastic schedule: split, then merge back, alternating.
		if (i+1)%every == 0 {
			if out.Migrations%2 == 0 {
				if src := pickSplit(c.Loads()); src >= 0 {
					_, rep, err := c.SplitShard(src, nil)
					if err != nil {
						refuse("rebalance: batch %d: SplitShard(%d): %v", i, src, err)
					}
					addMigration(rep)
				}
			} else if src, dst := pickMerge(c.Loads()); src >= 0 {
				rep, err := c.MergeShards(dst, src, nil)
				if err != nil {
					refuse("rebalance: batch %d: MergeShards(%d, %d): %v", i, dst, src, err)
				}
				addMigration(rep)
			}
		}
	}
	out.WallMs = float64(time.Since(start).Microseconds()) / 1000
	out.FinalEpoch = c.Epoch()
	out.FinalShards = c.Shards()
	if int(out.FinalEpoch) != out.Migrations {
		refuse("rebalance: epoch %d after %d migrations", out.FinalEpoch, out.Migrations)
	}

	// Final structure via a cluster-wide ordered read.
	read := []core.RangeOp[uint64, int64]{{Lo: 0, Hi: 1 << 14, Kind: core.RangeRead}}
	res, errs, _, err := c.TryRangeOperation(read)
	if err != nil {
		refuse("rebalance: final read: %v", err)
	}
	for _, e := range errs {
		if e != nil {
			refuse("rebalance: final read degraded: %v", e)
		}
	}
	sh := fnv.New64a()
	for _, p := range res[0].Pairs {
		fmt.Fprintf(sh, "%v=%v;", p.Key, p.Value)
	}
	for i := 0; i < c.Shards(); i++ {
		out.MigrationRounds += c.ShardStats(i).Migration.Rounds
	}
	return out, h.Sum64(), sh.Sum64()
}

func runRebalance(args []string) {
	f := fs("rebalance")
	outPath := f.String("out", "results/BENCH_rebalance.json", "JSON output file")
	label := f.String("label", "current", "entry label (an existing entry with the same label is replaced)")
	note := f.String("note", "", "free-form note stored with the entry")
	shardP := f.Int("p", 8, "modules per shard")
	batches := f.Int("batches", 100, "mixed batches per row")
	every := f.Int("every", 10, "migrate after every this-many batches")
	seed := f.Uint64("seed", 0x5EED, "fault-plan seed")
	smoke := f.Bool("smoke", false, "small CI ladder (2 shards, 30 batches), result not recorded")
	f.Parse(args)

	ladder := []int{2, 4}
	nBatches := *batches
	if *smoke {
		ladder = []int{2}
		nBatches = 30
	}
	regimes := []struct {
		name string
		mk   func(shards int) []core.FaultPlan
	}{
		{"none", func(int) []core.FaultPlan { return nil }},
		{"chaos", func(shards int) []core.FaultPlan {
			plans := make([]core.FaultPlan, shards)
			for i := range plans {
				plans[i] = pim.ChaosPlan(*seed + uint64(i))
			}
			return plans
		}},
		{"chaos+kill", func(shards int) []core.FaultPlan {
			plans := make([]core.FaultPlan, shards)
			for i := range plans {
				plans[i] = pim.ChaosPlan(*seed + uint64(i))
			}
			// The last shard dies early; unbounded recovery rebuilds it and
			// later migrations move its slots anyway.
			plans[shards-1] = pim.KillPlan(50, plans[shards-1])
			return plans
		}},
	}

	ops := genClusterOps(nBatches)
	oracleReply, oracleStruct := runClusterOracle(ops)

	entry := rebalanceEntry{
		Label:      *label,
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		ShardP:     *shardP,
		Every:      *every,
		Note:       *note,
	}
	tbl := newTable("shards", "plan", "migs", "slots", "keys", "suffix", "retries", "migRounds", "equiv", "wall ms")
	allEquivalent := true
	for _, shards := range ladder {
		for _, reg := range regimes {
			row, replySum, structSum := runRebalanceWorkload(shards, *shardP, *every, ops, reg.mk(shards))
			row.Plan = reg.name
			row.Equivalent = replySum == oracleReply && structSum == oracleStruct
			allEquivalent = allEquivalent && row.Equivalent
			entry.Rows = append(entry.Rows, row)
			tbl.add(shards, reg.name, row.Migrations, row.SlotsMoved, row.KeysCopied,
				row.SuffixBatches, row.Retries, row.MigrationRounds, row.Equivalent, row.WallMs)
		}
	}
	tbl.print()

	if !allEquivalent {
		refuse("rebalance: a rebalancing run diverged from the single-Map oracle; not recording")
	}
	if *smoke {
		fmt.Println("smoke run: not recorded")
		return
	}

	n, _, err := mergeBenchEntry(*outPath, "rebalance",
		"one row = the fixed mixed workload on one (shard count, fault regime) with live split/merge migrations every few batches; equivalence vs a fault-free single Map",
		entry, func(e rebalanceEntry) string { return e.Label })
	if err != nil {
		refuse("rebalance: %v", err)
	}
	fmt.Printf("wrote %s (%d entries, label %q)\n", *outPath, n, entry.Label)
}
