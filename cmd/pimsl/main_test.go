package main

import "testing"

func TestParseKeys(t *testing.T) {
	got, err := parseKeys([]string{"1,2", "3"})
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}

func TestParseKeysErrors(t *testing.T) {
	if _, err := parseKeys([]string{"x"}); err == nil {
		t.Fatal("expected error on non-numeric key")
	}
	if _, err := parseKeys(nil); err == nil {
		t.Fatal("expected error on empty input")
	}
	if _, err := parseKeys([]string{","}); err == nil {
		t.Fatal("expected error on only separators")
	}
}

func TestParsePairs(t *testing.T) {
	keys, vals, err := parsePairs([]string{"1=10,2=-20"})
	if err != nil {
		t.Fatal(err)
	}
	if keys[0] != 1 || vals[0] != 10 || keys[1] != 2 || vals[1] != -20 {
		t.Fatalf("got %v %v", keys, vals)
	}
}

func TestParsePairsErrors(t *testing.T) {
	for _, bad := range [][]string{{"1"}, {"a=1"}, {"1=b"}, nil, {","}} {
		if _, _, err := parsePairs(bad); err == nil {
			t.Fatalf("expected error for %v", bad)
		}
	}
}
