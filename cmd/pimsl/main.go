// Command pimsl is an interactive shell for the PIM skip list: type batch
// operations, watch the structure and the PIM-model cost of every batch.
//
// Usage:
//
//	pimsl [-P modules] [-seed n]
//
// Commands (keys and values are integers; commas separate batch items):
//
//	put k=v[,k=v...]    batched Upsert
//	get k[,k...]        batched Get
//	del k[,k...]        batched Delete
//	succ k[,k...]       batched Successor
//	pred k[,k...]       batched Predecessor
//	range lo hi         broadcast range read
//	count lo hi         tree range count
//	render              print the structure (Fig. 2 style)
//	check               verify all invariants
//	stats               structure summary
//	help                this text
//	quit                exit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"pimgo/internal/core"
)

func main() {
	p := flag.Int("P", 8, "number of PIM modules")
	seed := flag.Uint64("seed", 1, "randomness seed")
	flag.Parse()

	m := core.New[uint64, int64](core.Config{P: *p, Seed: *seed}, core.Uint64Hash)
	fmt.Printf("pimsl: PIM skip list on %d modules (type 'help')\n", *p)

	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		cmd, rest := fields[0], fields[1:]
		switch cmd {
		case "quit", "exit":
			return
		case "help":
			fmt.Println("put k=v[,..] | get k[,..] | del k[,..] | succ k[,..] | pred k[,..]")
			fmt.Println("range lo hi | count lo hi | render | check | stats | quit")
		case "put":
			keys, vals, err := parsePairs(rest)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			ins, st := m.Upsert(keys, vals)
			n := 0
			for _, b := range ins {
				if b {
					n++
				}
			}
			fmt.Printf("inserted %d, updated %d | %s\n", n, len(ins)-n, st)
		case "get":
			keys, err := parseKeys(rest)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			res, st := m.Get(keys)
			for i, r := range res {
				if r.Found {
					fmt.Printf("%d = %d\n", keys[i], r.Value)
				} else {
					fmt.Printf("%d : not found\n", keys[i])
				}
			}
			fmt.Println("|", st.String())
		case "del":
			keys, err := parseKeys(rest)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			found, st := m.Delete(keys)
			n := 0
			for _, b := range found {
				if b {
					n++
				}
			}
			fmt.Printf("deleted %d of %d | %s\n", n, len(found), st)
		case "succ", "pred":
			keys, err := parseKeys(rest)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			var res []core.SearchResult[uint64, int64]
			var st core.BatchStats
			if cmd == "succ" {
				res, st = m.Successor(keys)
			} else {
				res, st = m.Predecessor(keys)
			}
			for i, r := range res {
				if r.Found {
					fmt.Printf("%s(%d) = %d (value %d)\n", cmd, keys[i], r.Key, r.Value)
				} else {
					fmt.Printf("%s(%d) : none\n", cmd, keys[i])
				}
			}
			fmt.Println("|", st.String())
		case "range", "count":
			if len(rest) != 2 {
				fmt.Println("error: need lo hi")
				continue
			}
			lo, err1 := strconv.ParseUint(rest[0], 10, 64)
			hi, err2 := strconv.ParseUint(rest[1], 10, 64)
			if err1 != nil || err2 != nil {
				fmt.Println("error: bad bounds")
				continue
			}
			if cmd == "range" {
				res, st := m.RangeBroadcast(core.RangeOp[uint64, int64]{Lo: lo, Hi: hi, Kind: core.RangeRead})
				for _, p := range res.Pairs {
					fmt.Printf("%d = %d\n", p.Key, p.Value)
				}
				fmt.Printf("%d pairs | %s\n", res.Count, st)
			} else {
				res, st := m.RangeTreeOne(core.RangeOp[uint64, int64]{Lo: lo, Hi: hi, Kind: core.RangeCount})
				fmt.Printf("%d pairs | %s\n", res.Count, st)
			}
		case "render":
			fmt.Print(m.RenderStructure())
		case "check":
			if err := m.CheckInvariants(); err != nil {
				fmt.Println("INVARIANT VIOLATION:", err)
			} else {
				fmt.Println("ok")
			}
		case "stats":
			lower, upper := m.NodeCounts()
			var lo, up int64
			for i := range lower {
				lo += lower[i]
				up = upper[i]
			}
			fmt.Printf("keys=%d, lower nodes=%d, upper nodes/module=%d, P=%d\n",
				m.Len(), lo, up, m.P())
		default:
			fmt.Printf("unknown command %q (try 'help')\n", cmd)
		}
	}
}

// parseKeys parses "1,2,3" (possibly split over several fields).
func parseKeys(fields []string) ([]uint64, error) {
	var keys []uint64
	for _, f := range fields {
		for _, part := range strings.Split(f, ",") {
			if part == "" {
				continue
			}
			k, err := strconv.ParseUint(part, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad key %q", part)
			}
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("no keys")
	}
	return keys, nil
}

// parsePairs parses "1=10,2=20".
func parsePairs(fields []string) ([]uint64, []int64, error) {
	var keys []uint64
	var vals []int64
	for _, f := range fields {
		for _, part := range strings.Split(f, ",") {
			if part == "" {
				continue
			}
			kv := strings.SplitN(part, "=", 2)
			if len(kv) != 2 {
				return nil, nil, fmt.Errorf("bad pair %q (want k=v)", part)
			}
			k, err := strconv.ParseUint(kv[0], 10, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("bad key %q", kv[0])
			}
			v, err := strconv.ParseInt(kv[1], 10, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("bad value %q", kv[1])
			}
			keys = append(keys, k)
			vals = append(vals, v)
		}
	}
	if len(keys) == 0 {
		return nil, nil, fmt.Errorf("no pairs")
	}
	return keys, vals, nil
}
