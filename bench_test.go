// Package pimgo's top-level benchmarks map one-to-one onto the paper's
// tables and figures (see DESIGN.md §4 and EXPERIMENTS.md): each benchmark
// regenerates one artifact and reports the model metrics (IO time, PIM
// time, CPU work) as custom benchmark units alongside wall-clock time.
//
// Run everything:
//
//	go test -bench=. -benchmem
package pimgo

import (
	"fmt"
	"testing"

	"pimgo/internal/adversary"
	"pimgo/internal/ballsbins"
	"pimgo/internal/baseline"
	"pimgo/internal/core"
	"pimgo/internal/rng"
)

const keySpace = uint64(1) << 40

func lg(p int) int {
	l := 1
	for 1<<l < p {
		l++
	}
	return l
}

func buildMap(b *testing.B, p, n int, seed uint64, opts ...func(*core.Config)) *core.Map[uint64, int64] {
	b.Helper()
	cfg := core.Config{P: p, Seed: seed}
	for _, o := range opts {
		o(&cfg)
	}
	m := core.New[uint64, int64](cfg, core.Uint64Hash)
	r := rng.NewXoshiro256(seed ^ 0xF111)
	keys := make([]uint64, n)
	vals := make([]int64, n)
	for i := range keys {
		keys[i] = 1 + r.Uint64n(keySpace)
	}
	m.Upsert(keys, vals)
	return m
}

func reportStats(b *testing.B, st core.BatchStats) {
	b.Helper()
	b.ReportMetric(float64(st.IOTime), "IOtime")
	b.ReportMetric(float64(st.PIMTime), "PIMtime")
	b.ReportMetric(float64(st.Rounds), "rounds")
	b.ReportMetric(float64(st.CPUWork)/float64(max(st.Batch, 1)), "CPUwork/op")
	b.ReportMetric(float64(st.CPUMem), "minM")
}

// BenchmarkTable1Get — Table 1 row Get/Update (Theorem 4.1).
func BenchmarkTable1Get(b *testing.B) {
	for _, p := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			m := buildMap(b, p, 1<<15, 1)
			r := rng.NewXoshiro256(2)
			batch := p * lg(p)
			keys := make([]uint64, batch)
			var last core.BatchStats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range keys {
					keys[j] = 1 + r.Uint64n(keySpace)
				}
				_, last = m.Get(keys)
			}
			reportStats(b, last)
		})
	}
}

// BenchmarkTable1Update — Table 1 row Get/Update, write path.
func BenchmarkTable1Update(b *testing.B) {
	for _, p := range []int{8, 32} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			m := buildMap(b, p, 1<<15, 3)
			present := m.KeysInOrder()
			batch := p * lg(p)
			keys := present[:batch]
			vals := make([]int64, batch)
			var last core.BatchStats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, last = m.Update(keys, vals)
			}
			reportStats(b, last)
		})
	}
}

// BenchmarkTable1Successor — Table 1 row Predecessor/Successor
// (Theorem 4.3), uniform workload.
func BenchmarkTable1Successor(b *testing.B) {
	for _, p := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			m := buildMap(b, p, 1<<15, 5)
			r := rng.NewXoshiro256(6)
			batch := p * lg(p) * lg(p)
			keys := make([]uint64, batch)
			var last core.BatchStats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range keys {
					keys[j] = 1 + r.Uint64n(keySpace)
				}
				_, last = m.Successor(keys)
			}
			reportStats(b, last)
		})
	}
}

// BenchmarkTable1Predecessor — the symmetric row of Theorem 4.3.
func BenchmarkTable1Predecessor(b *testing.B) {
	p := 32
	m := buildMap(b, p, 1<<15, 7)
	r := rng.NewXoshiro256(8)
	batch := p * lg(p) * lg(p)
	keys := make([]uint64, batch)
	var last core.BatchStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range keys {
			keys[j] = 1 + r.Uint64n(keySpace)
		}
		_, last = m.Predecessor(keys)
	}
	reportStats(b, last)
}

// BenchmarkTable1Upsert — Table 1 row Upsert (Theorem 4.4). Fresh keys per
// iteration: the structure grows while the metrics stay n-independent.
func BenchmarkTable1Upsert(b *testing.B) {
	for _, p := range []int{8, 32} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			m := buildMap(b, p, 1<<14, 9)
			r := rng.NewXoshiro256(10)
			batch := p * lg(p) * lg(p)
			keys := make([]uint64, batch)
			vals := make([]int64, batch)
			var last core.BatchStats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range keys {
					keys[j] = 1 + r.Uint64n(keySpace)
				}
				_, last = m.Upsert(keys, vals)
			}
			reportStats(b, last)
		})
	}
}

// BenchmarkTable1Delete — Table 1 row Delete (Theorem 4.5). Each iteration
// re-inserts what it deletes so the structure size is stable.
func BenchmarkTable1Delete(b *testing.B) {
	for _, p := range []int{8, 32} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			m := buildMap(b, p, 1<<14, 11)
			batch := p * lg(p) * lg(p)
			present := m.KeysInOrder()
			keys := present[:batch]
			vals := make([]int64, batch)
			var last core.BatchStats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, last = m.Delete(keys)
				b.StopTimer()
				m.Upsert(keys, vals)
				b.StartTimer()
			}
			reportStats(b, last)
		})
	}
}

// BenchmarkBatchEngine — steady-state batch-operation cost on a long-lived
// warmed Map, over the same shape grid as `pimbench batchengine` (the two
// measure the identical deterministic loop, so their numbers are directly
// comparable). allocs/op is the headline: it must be 0 for every shape —
// the hard guarantee is enforced by TestZeroAlloc* (`make benchguard`).
func BenchmarkBatchEngine(b *testing.B) {
	for _, sh := range core.BatchBenchShapes() {
		b.Run(fmt.Sprintf("%s/P=%d/B=%d", sh.Op, sh.P, sh.Batch), func(b *testing.B) {
			bb := core.NewBatchBench(sh)
			bb.Warm()
			b.ReportAllocs()
			var last core.BatchStats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				last = bb.Iter(b)
			}
			reportStats(b, last)
		})
	}
}

// BenchmarkThm31Space — Theorem 3.1: build and report per-module space.
func BenchmarkThm31Space(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		m := buildMap(b, 32, 1<<14, uint64(13+i))
		lower, upper := m.NodeCounts()
		var tot, maxm int64
		for j := range lower {
			s := lower[j] + upper[j]
			tot += s
			if s > maxm {
				maxm = s
			}
		}
		ratio = float64(maxm) / (float64(tot) / 32)
	}
	b.ReportMetric(ratio, "max/mean")
}

// BenchmarkLemma42Contention — Fig. 3 / Lemma 4.2: pivoted execution under
// the same-successor adversary; MaxNodeAccess must stay O(1) per phase.
func BenchmarkLemma42Contention(b *testing.B) {
	p := 32
	cfg := core.Config{P: p, Seed: 15, TrackAccess: true}
	m := core.New[uint64, int64](cfg, core.Uint64Hash)
	g := adversary.NewGen(16, keySpace)
	anchors := g.SparseAnchors(1 << 12)
	m.Upsert(anchors, make([]int64, len(anchors)))
	keys := g.Batch(adversary.SameSuccessor, p*lg(p)*lg(p))
	var last core.BatchStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, last = m.Successor(keys)
	}
	b.ReportMetric(float64(last.MaxNodeAccess), "maxNodeAccess")
	reportStats(b, last)
}

// BenchmarkNaiveVsPivoted — §4.2's separation, reported as IO-time units.
func BenchmarkNaiveVsPivoted(b *testing.B) {
	for _, naive := range []bool{false, true} {
		name := "pivoted"
		if naive {
			name = "naive"
		}
		b.Run(name, func(b *testing.B) {
			p := 32
			cfg := core.Config{P: p, Seed: 17, NaiveBatch: naive}
			m := core.New[uint64, int64](cfg, core.Uint64Hash)
			g := adversary.NewGen(18, keySpace)
			m.Upsert(g.SparseAnchors(1<<12), make([]int64, 1<<12))
			keys := g.Batch(adversary.SameSuccessor, p*lg(p)*lg(p))
			var last core.BatchStats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, last = m.Successor(keys)
			}
			reportStats(b, last)
		})
	}
}

// BenchmarkThm51RangeBroadcast — Theorem 5.1.
func BenchmarkThm51RangeBroadcast(b *testing.B) {
	m := buildMap(b, 32, 1<<15, 19)
	keys := m.KeysInOrder()
	lo, hi := keys[len(keys)/4], keys[3*len(keys)/4]
	var last core.BatchStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, last = m.RangeBroadcast(core.RangeOp[uint64, int64]{Lo: lo, Hi: hi, Kind: core.RangeCount})
	}
	reportStats(b, last)
}

// BenchmarkThm52RangeTree — Theorem 5.2: a batch of small tree ranges.
func BenchmarkThm52RangeTree(b *testing.B) {
	p := 32
	m := buildMap(b, p, 1<<15, 21)
	keys := m.KeysInOrder()
	B := p * lg(p)
	ops := make([]core.RangeOp[uint64, int64], B)
	stride := len(keys) / (B + 1)
	for i := range ops {
		lo := (i + 1) * stride
		ops[i] = core.RangeOp[uint64, int64]{Lo: keys[lo], Hi: keys[min(lo+31, len(keys)-1)], Kind: core.RangeCount}
	}
	var last core.BatchStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, last = m.RangeTree(ops)
	}
	reportStats(b, last)
}

// BenchmarkLemma21 / BenchmarkLemma22 — the balls-in-bins lemmas.
func BenchmarkLemma21(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		worst = ballsbins.Throw(1024*10, 1024, uint64(i)).MaxMeanRatio()
	}
	b.ReportMetric(worst, "max/mean")
}

func BenchmarkLemma22(b *testing.B) {
	w := ballsbins.CapWeights(1024*1000, 1024)
	var worst float64
	for i := 0; i < b.N; i++ {
		worst = ballsbins.ThrowWeighted(w, 1024, uint64(i)).MaxMeanRatio()
	}
	b.ReportMetric(worst, "max/mean")
}

// BenchmarkVsRangePartition — §2.2/§3.1 comparison on the range-cluster
// adversary (ours stays balanced; the baseline serializes).
func BenchmarkVsRangePartition(b *testing.B) {
	const p, n = 32, 1 << 14
	g := adversary.NewGen(23, keySpace)
	seed := g.Batch(adversary.Uniform, n)
	vals := make([]int64, n)
	batch := g.Batch(adversary.RangeCluster, p*lg(p))

	b.Run("ours", func(b *testing.B) {
		m := core.New[uint64, int64](core.Config{P: p, Seed: 1}, core.Uint64Hash)
		m.Upsert(seed, vals)
		var last core.BatchStats
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, last = m.Get(batch)
		}
		reportStats(b, last)
	})
	b.Run("rangepart", func(b *testing.B) {
		m := baseline.New[uint64, int64](p, 1, baseline.UniformSplitters(p, keySpace))
		m.Upsert(seed, vals)
		var last core.BatchStats
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, last = m.Get(batch)
		}
		reportStats(b, last)
	})
}

// BenchmarkAblateHLow — ABL-H: the lower-part height design knob.
func BenchmarkAblateHLow(b *testing.B) {
	p := 32
	for _, d := range []int{-2, 0, 2} {
		h := lg(p) + d
		b.Run(fmt.Sprintf("hlow=%d", h), func(b *testing.B) {
			m := buildMap(b, p, 1<<14, 25, func(c *core.Config) { c.HLow = h })
			r := rng.NewXoshiro256(26)
			keys := make([]uint64, p*lg(p)*lg(p))
			var last core.BatchStats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range keys {
					keys[j] = 1 + r.Uint64n(keySpace)
				}
				_, last = m.Successor(keys)
			}
			reportStats(b, last)
		})
	}
}

// BenchmarkAblatePivots — ABL-PIV: pivot spacing under a uniform batch.
func BenchmarkAblatePivots(b *testing.B) {
	p := 32
	for _, s := range []int{1, lg(p), lg(p) * lg(p)} {
		b.Run(fmt.Sprintf("spacing=%d", s), func(b *testing.B) {
			m := buildMap(b, p, 1<<14, 27, func(c *core.Config) { c.PivotSpacing = s })
			r := rng.NewXoshiro256(28)
			keys := make([]uint64, p*lg(p)*lg(p))
			var last core.BatchStats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range keys {
					keys[j] = 1 + r.Uint64n(keySpace)
				}
				_, last = m.Successor(keys)
			}
			reportStats(b, last)
		})
	}
}

// BenchmarkBulkLoad — EXT-BULK: O(1)-round construction from sorted pairs,
// vs. the equivalent batched Upsert.
func BenchmarkBulkLoad(b *testing.B) {
	const n = 1 << 14
	keys := make([]uint64, n)
	vals := make([]int64, n)
	for i := range keys {
		keys[i] = uint64(i)*64 + 1
	}
	b.Run("bulk", func(b *testing.B) {
		var last core.BatchStats
		for i := 0; i < b.N; i++ {
			m := core.New[uint64, int64](core.Config{P: 32, Seed: uint64(i)}, core.Uint64Hash)
			last = m.BulkLoad(keys, vals)
		}
		reportStats(b, last)
	})
	b.Run("upsert", func(b *testing.B) {
		var last core.BatchStats
		for i := 0; i < b.N; i++ {
			m := core.New[uint64, int64](core.Config{P: 32, Seed: uint64(i)}, core.Uint64Hash)
			_, last = m.Upsert(keys, vals)
		}
		reportStats(b, last)
	})
}
