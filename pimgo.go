// Package pimgo is the public facade of the PIM-model reproduction: it
// re-exports the skip list (the paper's contribution), its configuration
// and statistics types, and the companion structures, so downstream users
// write `import "pimgo"` and never touch internal packages directly.
//
//	m := pimgo.NewMap[uint64, int64](pimgo.Config{P: 16, Seed: 42}, pimgo.Uint64Hash)
//	m.Upsert(keys, vals)
//	res, stats := m.Successor(queries)
//
// # Architecture
//
// A Map runs on a simulated Processing-in-Memory machine (internal/pim):
// P memory modules, each a sequential processor with private memory,
// driven bulk-synchronously by a CPU-side fork–join program
// (internal/cpu) whose work, depth, and peak shared memory are accounted
// analytically. Every batch operation returns BatchStats carrying the
// paper's cost metrics — rounds, IO time as h-relations, PIM time, sync
// cost, CPU work/depth, minimum M — each defined normatively in
// docs/METRICS.md. All metrics are deterministic: identical seeds give
// bit-identical structures and numbers regardless of GOMAXPROCS.
//
// Batches are PIM-balanced per the paper: pivot-based batched search
// (§4.2), Algorithm 1 insert linking (§4.3), list-contraction delete
// (§4.4), and broadcast/tree range operations (§5). Companion structures
// (HashMap, Sorter) cover the paper's stated future work; FaultPlan adds
// deterministic fault injection with a reliable transport on top.
//
// # Observability
//
// Installing a TraceSink (Config.Trace or Map.SetTraceSink) streams
// structured events — batch boundaries, per-phase metric deltas,
// per-round per-module IO, fault events — to a TraceProfile (exact
// per-phase attribution; Map.LastProfile) or a ChromeTracer
// (chrome://tracing / Perfetto export). With no sink installed the layer
// costs nothing: steady-state batches allocate zero and metrics are
// bit-identical. See docs/TRACING.md for the schema and guarantees.
//
// See README.md for the repository layout and EXPERIMENTS.md for the
// paper reproduction; the full API documentation lives on the aliased
// types.
package pimgo

import (
	"cmp"
	"io"

	"pimgo/internal/cluster"
	"pimgo/internal/core"
	"pimgo/internal/frontend"
	"pimgo/internal/pim"
	"pimgo/internal/pimmap"
	"pimgo/internal/pimsort"
	"pimgo/internal/trace"
)

// Config configures a Map (see core.Config for field documentation).
type Config = core.Config

// BatchStats carries the PIM-model cost metrics of one batch.
type BatchStats = core.BatchStats

// Map is the PIM-balanced batch-parallel skip list of the paper.
type Map[K cmp.Ordered, V any] = core.Map[K, V]

// SearchResult is the outcome of a Predecessor/Successor operation.
type SearchResult[K cmp.Ordered, V any] = core.SearchResult[K, V]

// GetResult is the outcome of a Get operation.
type GetResult[V any] = core.GetResult[V]

// RangeOp describes one range operation over [Lo, Hi].
type RangeOp[K cmp.Ordered, V any] = core.RangeOp[K, V]

// RangePair is one key-value pair returned by range reads.
type RangePair[K cmp.Ordered, V any] = core.RangePair[K, V]

// RangeResult is the outcome of one range operation.
type RangeResult[K cmp.Ordered, V any] = core.RangeResult[K, V]

// RangeKind selects what a range operation does (count, read, transform).
type RangeKind = core.RangeKind

// Range operation kinds.
const (
	RangeCount     = core.RangeCount
	RangeRead      = core.RangeRead
	RangeTransform = core.RangeTransform
	RangeReduce    = core.RangeReduce
)

// Typed errors of the batch API; match with errors.Is. The legacy
// two-value methods panic with these values on caller mistakes; the Try*
// variants return them.
var (
	// ErrBadConfig reports an invalid Config (TryNewMap).
	ErrBadConfig = core.ErrBadConfig
	// ErrBadBatch reports malformed batch arguments, e.g. a keys/vals
	// length mismatch.
	ErrBadBatch = core.ErrBadBatch
	// ErrClosed reports use of a Map after Close.
	ErrClosed = core.ErrClosed
	// ErrInvalidModule reports a send routed outside [0, P).
	ErrInvalidModule = core.ErrInvalidModule
	// ErrFaultUnrecoverable reports that an installed fault plan defeated
	// the reliable transport's retransmit budget; see docs/MODEL.md.
	ErrFaultUnrecoverable = core.ErrFaultUnrecoverable
	// ErrConcurrentBatch reports a second batch started on a Map while
	// another is running. A Map is a single-driver structure; coalesce
	// concurrent single-op traffic through a Frontend instead.
	ErrConcurrentBatch = core.ErrConcurrentBatch
	// ErrMachineKilled reports that a terminal fault plan (KillFaultPlan)
	// permanently killed a machine mid-batch; only a supervisor rebuild
	// (Cluster) brings the shard back.
	ErrMachineKilled = pim.ErrMachineKilled
	// ErrShardDown reports a Cluster operation touching a permanently down
	// shard; it is surfaced per key (degraded mode), not per batch.
	ErrShardDown = cluster.ErrShardDown
	// ErrShardDraining reports a mutating Cluster batch routed to a
	// draining shard.
	ErrShardDraining = cluster.ErrShardDraining
	// ErrShardState reports an invalid shard lifecycle transition
	// (e.g. StartShard on a running shard).
	ErrShardState = cluster.ErrShardState
	// ErrRebalancing reports a Cluster migration rejected because another
	// migration is already in flight, or because the routing table changed
	// between planning and execution.
	ErrRebalancing = cluster.ErrRebalancing
)

// Frontend coalesces single-key operations from arbitrarily many client
// goroutines into amortized Map batches: clients call Get/Upsert/Delete/
// Successor one key at a time, a collector goroutine batches them (bounded
// by FrontendConfig.MaxBatch and MaxWait), runs the batch through the Map,
// and demultiplexes the replies. Replies are bit-identical to running each
// op as its own batch at the flush's linearization point; the steady-state
// enqueue/reply path allocates nothing. See docs/FRONTEND.md.
type Frontend[K cmp.Ordered, V any] = frontend.Frontend[K, V]

// FrontendConfig tunes the collector (batch size cap and dwell); the zero
// value selects the defaults.
type FrontendConfig = frontend.Config

// FrontendStats reports the collector's accumulated behaviour (flush count,
// coalesced sizes, queue waits); read it with Frontend.Stats.
type FrontendStats = frontend.Stats

// NewFrontend starts a collector over m and takes over as the Map's sole
// driver; stop it with Frontend.Close (the Map itself stays open). Direct
// batches on m while the frontend is open fail with ErrConcurrentBatch.
func NewFrontend[K cmp.Ordered, V any](m *Map[K, V], cfg FrontendConfig) *Frontend[K, V] {
	return frontend.New(m, cfg)
}

// Pipeline is the two-deep batch execution pipeline over one Map: while
// batch k's PIM rounds run on a dedicated executor goroutine, batch k+1's
// CPU prefix (sort/semisort/dedup, send construction) runs on the
// submitter's goroutine against a second workspace. Replies, BatchStats,
// and trace events are bit-identical to running the same batches serially.
// See docs/PIPELINE.md for the hand-off contract.
type Pipeline[K cmp.Ordered, V any] = core.Pipeline[K, V]

// PipelineTicket is the future of one pipelined batch; resolve it with
// Wait (single use).
type PipelineTicket[K cmp.Ordered, V any] = core.PipeTicket[K, V]

// PipelineResult is the outcome of one pipelined batch: the op's replies,
// its BatchStats, and the typed error of a failed batch.
type PipelineResult[K cmp.Ordered, V any] = core.PipeResult[K, V]

// NewPipeline starts a pipeline over m and takes over as the Map's sole
// driver; stop it with Pipeline.Close (the Map itself stays open and is
// serially usable again afterwards). Direct batches on m while the
// pipeline is open are misuse (see docs/PIPELINE.md).
func NewPipeline[K cmp.Ordered, V any](m *Map[K, V]) *Pipeline[K, V] {
	return core.NewPipeline(m)
}

// FaultPlan injects deterministic message/module faults into the simulated
// machine; install one via Config.Fault. Nil means the paper's reliable
// network (the default, with zero simulation overhead).
type FaultPlan = core.FaultPlan

// FaultConfig parameterizes NewSeededFaultPlan.
type FaultConfig = core.FaultConfig

// FaultStats reports what a plan injected and what recovery cost; read it
// with Map.FaultStats.
type FaultStats = core.FaultStats

// NewSeededFaultPlan builds the deterministic built-in plan: every
// decision is a pure hash of (seed, round, module, message), so a faulted
// run replays bit-identically across runs and GOMAXPROCS settings.
func NewSeededFaultPlan(cfg FaultConfig) FaultPlan { return core.NewSeededFaultPlan(cfg) }

// DropFaultPlan drops each message with probability bp/10000.
func DropFaultPlan(seed uint64, bp int) FaultPlan { return pim.DropPlan(seed, bp) }

// DupFaultPlan duplicates each message with probability bp/10000; the
// reliable transport must deduplicate the copies.
func DupFaultPlan(seed uint64, bp int) FaultPlan { return pim.DupPlan(seed, bp) }

// DelayFaultPlan delays each message with probability bp/10000 by up to
// maxDelay rounds before delivery.
func DelayFaultPlan(seed uint64, bp, maxDelay int) FaultPlan {
	return pim.DelayPlan(seed, bp, maxDelay)
}

// StallFaultPlan slows a module's round with probability bp/10000,
// multiplying its processing cost by factor (straggler injection).
func StallFaultPlan(seed uint64, bp int, factor int64) FaultPlan {
	return pim.StallPlan(seed, bp, factor)
}

// CrashFaultPlan crash-stops a module with probability bp/10000 for the
// given number of rounds; its state is replayed on recovery.
func CrashFaultPlan(seed uint64, bp, rounds int) FaultPlan { return pim.CrashPlan(seed, bp, rounds) }

// ChaosFaultPlan mixes drops, duplicates, delays, stalls, and crashes at
// moderate rates — the plan the chaos soak and `pimbench chaos` use.
func ChaosFaultPlan(seed uint64) FaultPlan { return pim.ChaosPlan(seed) }

// KillFaultPlan permanently kills the machine at physical round at
// (terminal fault): inner (nil = fault-free) governs the rounds before the
// kill, after which every module is down forever and the in-flight batch
// fails with ErrMachineKilled. Meant for Cluster shards, whose supervisor
// rebuilds a killed shard from its journal under the inner plan; on a
// standalone Map the error is permanent.
func KillFaultPlan(at int64, inner FaultPlan) FaultPlan { return pim.KillPlan(at, inner) }

// TraceSink receives the structured trace events of a Map: batch start/end,
// phase spans with metric deltas, per-round module IO, and fault-layer
// events. Install one via Config.Trace or Map.SetTraceSink; nil (the
// default) has zero overhead. The event schema and the zero-overhead
// contract are documented in docs/TRACING.md.
type TraceSink = trace.Sink

// TraceProfile is the aggregating TraceSink: it attributes every Table 1
// metric to the algorithm phase that produced it. Read the most recent
// batch's breakdown with Map.LastProfile, cross-batch aggregates with
// TraceProfile.ByOp.
type TraceProfile = trace.Profile

// BatchProfile is one batch's (or one op kind's aggregated) per-phase
// metric attribution, produced by a TraceProfile.
type BatchProfile = trace.BatchProfile

// PhaseTotals is the attribution of one phase within a BatchProfile.
type PhaseTotals = trace.PhaseTotals

// TracePhase identifies an algorithm phase in trace events (sort, semisort,
// search, execute, rebuild, contract, other).
type TracePhase = trace.Phase

// Trace phase identifiers (see docs/TRACING.md for the taxonomy).
const (
	PhaseOther    = trace.PhaseOther
	PhaseSort     = trace.PhaseSort
	PhaseSemisort = trace.PhaseSemisort
	PhaseSearch   = trace.PhaseSearch
	PhaseExecute  = trace.PhaseExecute
	PhaseRebuild  = trace.PhaseRebuild
	PhaseContract = trace.PhaseContract
)

// TraceSpan is one completed phase span: the metric deltas the phase
// produced.
type TraceSpan = trace.Span

// TraceTotals is a batch's headline metric totals as seen by trace sinks.
type TraceTotals = trace.Totals

// TraceRoundStat is one machine round's statistics (h-relation, max work,
// per-module IO split).
type TraceRoundStat = trace.RoundStat

// TraceModuleIO is one module's in/out/work contribution to a round.
type TraceModuleIO = trace.ModuleIO

// TraceFaultEvent is one fault-layer event (injection or recovery action).
type TraceFaultEvent = trace.FaultEvent

// TraceFaultKind enumerates fault-layer event kinds; the names mirror the
// FaultStats counters one to one.
type TraceFaultKind = trace.FaultKind

// TraceFlushStat describes one Frontend flush: ops coalesced, ops actually
// submitted after write-coalescing, queue waits, and flush wall time (the
// collector lives outside the simulated machine, so wall clock is the
// honest unit — see docs/FRONTEND.md).
type TraceFlushStat = trace.FlushStat

// TraceFlushSink is optionally implemented by trace sinks that want the
// Frontend's flush events in addition to the machine stream; TraceProfile
// implements it (read back with TraceProfile.Collector).
type TraceFlushSink = trace.FlushSink

// TraceCollectorTotals is TraceProfile's aggregate over Frontend flush
// events.
type TraceCollectorTotals = trace.CollectorTotals

// TracePipeStat describes one pipelined batch's scheduling: prep wall time
// on the submitter, wait for the executor (a positive wait is overlap with
// an earlier batch's rounds), and exec wall time. Wall clock is the honest
// unit here — the pipeline schedules real goroutines outside the simulated
// machine — so determinism oracles must exclude it (docs/PIPELINE.md).
type TracePipeStat = trace.PipeStat

// TracePipeSink is optionally implemented by trace sinks that want the
// Pipeline's per-batch scheduling events in addition to the machine stream;
// TraceProfile implements it (read back with TraceProfile.Pipeline).
type TracePipeSink = trace.PipeSink

// TracePipelineTotals is TraceProfile's aggregate over Pipeline scheduling
// events.
type TracePipelineTotals = trace.PipelineTotals

// TraceMigrationStat describes one shard's part in a published cluster
// migration (epoch, slot delta, keys bulk-loaded, suffix batches replayed,
// retries, model cost, or retirement), emitted to that shard's sink under
// the batch gate at cutover.
type TraceMigrationStat = trace.MigrationStat

// TraceMigrationSink is optionally implemented by trace sinks that want the
// Cluster's migration events in addition to the machine stream;
// TraceProfile implements it (read back with TraceProfile.Migrations).
type TraceMigrationSink = trace.MigrationSink

// TraceMigrationTotals is TraceProfile's aggregate over migration events.
type TraceMigrationTotals = trace.MigrationTotals

// TraceRebalanceStat describes one invocation of the ClusterFrontend's
// rebalance control loop: the ClusterDeltaLoads window consumed, the
// actions the policy proposed, the migrations that published a new routing
// epoch, and whether the attempt failed transiently against a stale
// window. Emitted from the collector goroutine between flushes.
type TraceRebalanceStat = trace.RebalanceStat

// TraceRebalanceSink is optionally implemented by trace sinks that want the
// ClusterFrontend's control-loop events in addition to the machine stream;
// TraceProfile implements it (read back with TraceProfile.Rebalances).
type TraceRebalanceSink = trace.RebalanceSink

// TraceRebalanceTotals is TraceProfile's aggregate over control-loop
// rebalance events.
type TraceRebalanceTotals = trace.RebalanceTotals

// ChromeTracer is the TraceSink that streams Chrome trace_event JSON,
// loadable in chrome://tracing and Perfetto (ui.perfetto.dev).
type ChromeTracer = trace.ChromeTracer

// NewTraceProfile returns an empty aggregating profile sink.
func NewTraceProfile() *TraceProfile { return trace.NewProfile() }

// NewChromeTracer returns a ChromeTracer streaming to w; call Close after
// the last batch to finalize the JSON document.
func NewChromeTracer(w io.Writer) *ChromeTracer { return trace.NewChromeTracer(w) }

// TeeTraceSinks fans trace events out to several sinks (nil entries are
// skipped), e.g. a TraceProfile and a ChromeTracer at once.
func TeeTraceSinks(sinks ...TraceSink) TraceSink { return trace.Tee(sinks...) }

// NewMap constructs an empty PIM skip list on a fresh simulated machine.
func NewMap[K cmp.Ordered, V any](cfg Config, hash func(K) uint64) *Map[K, V] {
	return core.New[K, V](cfg, hash)
}

// TryNewMap is NewMap with the error convention: an invalid Config or nil
// hasher returns ErrBadConfig instead of panicking.
func TryNewMap[K cmp.Ordered, V any](cfg Config, hash func(K) uint64) (*Map[K, V], error) {
	return core.TryNew[K, V](cfg, hash)
}

// RestoreMap builds a Map from a Snapshot in O(1) network rounds.
func RestoreMap[K cmp.Ordered, V any](cfg Config, hash func(K) uint64, keys []K, vals []V) (*Map[K, V], BatchStats) {
	return core.Restore(cfg, hash, keys, vals)
}

// Ready-made key hashers.
var (
	Uint64Hash = core.Uint64Hash
	Int64Hash  = core.Int64Hash
	IntHash    = core.IntHash
	StringHash = core.StringHash
)

// Cluster shards one logical ordered map across N fault-isolated Map
// shards, each on its own simulated machine with its own fault plan and
// trace sink, behind a deterministic hash router. Batches scatter by
// shard, execute shards in parallel, and gather replies into submission
// order — bit-identical to a single Map. Killed shards are rebuilt
// exactly-once from a journal, or degrade to typed per-key ErrShardDown
// errors. Live rebalancing (SplitShard, MergeShards, and the policy-driven
// Rebalance) moves routing slots between shards online through an
// epoch-versioned routing table, with replies bit-identical to a single
// Map across every cutover. See docs/CLUSTER.md and docs/REBALANCE.md.
type Cluster[K cmp.Ordered, V any] = cluster.Cluster[K, V]

// ClusterConfig configures a Cluster (shard count, template shard Config,
// per-shard fault plans and trace sinks, recovery policy).
type ClusterConfig = cluster.Config

// ClusterStats aggregates the model cost of one cluster batch: per-shard
// BatchStats (parallel shards combine by max for elapsed metrics, sum for
// throughput metrics) plus the rebuilds performed.
type ClusterStats = cluster.Stats

// ClusterShardStats is one shard's health and cost summary (state, journal
// size in batches and operations, kills, recoveries, migrations, and the
// accumulated, recovery-only, and migration-only cost accounts).
type ClusterShardStats = cluster.ShardStats

// ClusterShardState is one shard's lifecycle state.
type ClusterShardState = cluster.ShardState

// Shard lifecycle states.
const (
	ShardRunning  = cluster.ShardRunning
	ShardDraining = cluster.ShardDraining
	ShardDown     = cluster.ShardDown
	ShardRetired  = cluster.ShardRetired
)

// NewCluster builds a sharded cluster per cfg; hash is shared by the
// router and every shard.
func NewCluster[K cmp.Ordered, V any](cfg ClusterConfig, hash func(K) uint64) (*Cluster[K, V], error) {
	return cluster.New[K, V](cfg, hash)
}

// ClusterPipeline is the two-deep pipeline over one Cluster: Submit* runs
// the pure routing scatter on the caller's goroutine while a dedicated
// executor fans earlier batches out to the shards strictly FIFO, so results,
// per-key errors, and ClusterStats stay bit-identical to the serial Try*
// schedule. While open it holds the cluster's batch gate (direct Try* fail
// with ErrConcurrentBatch); Close releases the cluster for serial use.
// Range operations are not pipelined — see docs/PIPELINE.md.
type ClusterPipeline[K cmp.Ordered, V any] = cluster.ClusterPipeline[K, V]

// ClusterPipelineTicket is the future of one pipelined cluster batch;
// resolve it with Wait (single use).
type ClusterPipelineTicket[K cmp.Ordered, V any] = cluster.ClusterTicket[K, V]

// ClusterPipelineResult is the outcome of one pipelined cluster batch: the
// serial entry point's (results, per-key errs, Stats) triple plus the typed
// error of a rejected submission.
type ClusterPipelineResult[K cmp.Ordered, V any] = cluster.ClusterPipeResult[K, V]

// NewClusterPipeline opens a pipeline over c, holding its batch gate for
// the pipeline's lifetime; it fails with ErrConcurrentBatch if a batch (or
// another pipeline) is already in flight.
func NewClusterPipeline[K cmp.Ordered, V any](c *Cluster[K, V]) (*ClusterPipeline[K, V], error) {
	return cluster.NewClusterPipeline(c)
}

// ClusterMigrateOpts tunes one live migration (SplitShard, MergeShards, or
// a Rebalance action): an OnPhase hook fired at the copy/catchup boundaries
// with the batch gate released, and the fault plan installed on a split's
// freshly created target shard. The zero value (or nil) is valid.
type ClusterMigrateOpts = cluster.MigrateOpts

// ClusterMigrationReport summarizes one published (or attempted) migration:
// the resulting epoch, slots and keys moved, journal-suffix batches carried
// across the cutover, build retries consumed by faults, shards added and
// retired, and the migration's total model cost.
type ClusterMigrationReport = cluster.MigrationReport

// Migration phase names passed to ClusterMigrateOpts.OnPhase.
const (
	// MigratePhaseCopy fires after the freeze, with the batch gate
	// released: client batches keep flowing while the frozen bases are
	// partitioned and bulk-loaded into the new incarnations.
	MigratePhaseCopy = cluster.PhaseCopy
	// MigratePhaseCatchup fires when the copy is complete, just before the
	// cutover reacquires the gate to replay the journal suffix and publish
	// the new epoch.
	MigratePhaseCatchup = cluster.PhaseCatchup
)

// ClusterShardLoad is one shard's load sample — routing-slot share, key
// count, and cumulative cost counters — fed to a ClusterRebalancePolicy by
// Cluster.Rebalance (sample directly with Cluster.Loads).
type ClusterShardLoad = cluster.ShardLoad

// ClusterDeltaLoads subtracts an earlier Cluster.Loads sample from a later
// one, matching by shard id, turning cumulative counters into a per-window
// load rate for hot-shard detection.
func ClusterDeltaLoads(cur, prev []ClusterShardLoad) []ClusterShardLoad {
	return cluster.DeltaLoads(cur, prev)
}

// ClusterRebalancePolicy proposes migrations from a load sample; pass one
// to Cluster.Rebalance. Implementations must be pure functions of the
// sample so rebalancing decisions replay deterministically.
type ClusterRebalancePolicy = cluster.RebalancePolicy

// ClusterRebalanceAction is one migration a policy proposes: split a hot
// shard or merge a cold one into another.
type ClusterRebalanceAction = cluster.RebalanceAction

// ClusterActionKind discriminates a ClusterRebalanceAction.
type ClusterActionKind = cluster.ActionKind

// Rebalance action kinds.
const (
	ActionSplit = cluster.ActionSplit
	ActionMerge = cluster.ActionMerge
)

// ClusterLoadRatioPolicy is the built-in hot/cold detector: shards whose
// load weight exceeds SplitAbove × the mean split, and the two lightest
// merge when both fall below MergeBelow × the mean. The zero value selects
// the defaults (2.0, 0.25, one action per call).
type ClusterLoadRatioPolicy = cluster.LoadRatioPolicy

// ClusterRebalanceReport is the outcome of one Cluster.Rebalance call: the
// proposed actions and their per-migration reports, index-aligned.
type ClusterRebalanceReport = cluster.RebalanceReport

// ClusterFrontend composes the whole serving stack: the Frontend's
// coalescing collector over an elastic Cluster. Arbitrarily many client
// goroutines submit single-key ops; one collector goroutine coalesces them
// (writes-before-reads, last-writer-wins — replies bit-identical to the
// single-Map Frontend), scatters each flush into per-shard sub-batches
// through the epoch-versioned slot table, and gathers exactly-once replies.
// With ClusterFrontendConfig.RebalanceEvery set it also drives the
// cluster's elasticity: a background sampler feeds per-window load deltas
// (ClusterDeltaLoads) to a ClusterRebalancePolicy and the collector runs
// the proposed migrations between flushes, so shards split and merge under
// live traffic with no client-visible errors. Create with
// NewClusterFrontend; see docs/FRONTEND.md and docs/ARCHITECTURE.md.
type ClusterFrontend[K cmp.Ordered, V any] = frontend.ClusterFrontend[K, V]

// ClusterFrontendConfig tunes the ClusterFrontend: the collector knobs of
// FrontendConfig (MaxBatch, MaxWait) plus the rebalance control loop's
// sampling interval, policy, and trace sink. The zero value selects the
// collector defaults and disables the loop.
type ClusterFrontendConfig = frontend.ClusterConfig

// ClusterFrontendStats extends FrontendStats with the control loop's
// counters (windows consumed, migrations proposed/published, transient
// stale-window failures absorbed); read it with ClusterFrontend.Stats.
type ClusterFrontendStats = frontend.ClusterStats

// NewClusterFrontend starts a collector (and, if configured, a rebalance
// loop) over c and takes over as the cluster's sole driver; stop it with
// ClusterFrontend.Close (the cluster itself stays open). Direct batches or
// migrations on c while the frontend is open race with the collector.
func NewClusterFrontend[K cmp.Ordered, V any](c *Cluster[K, V], cfg ClusterFrontendConfig) *ClusterFrontend[K, V] {
	return frontend.NewClusterFrontend(c, cfg)
}

// ShardTraceSink wraps a TraceSink so its op labels carry "s<id>/" shard
// attribution — what ClusterConfig.Trace installs on each shard's sink.
// Exported for callers that drive core Maps as shards by hand.
func ShardTraceSink(id int, inner TraceSink) TraceSink { return trace.Shard(id, inner) }

// HashMap is the unordered companion structure (future-work extension).
type HashMap[K comparable, V any] = pimmap.Map[K, V]

// NewHashMap constructs a PIM hash map over p modules.
func NewHashMap[K comparable, V any](p int, seed uint64, hash func(K) uint64) *HashMap[K, V] {
	return pimmap.New[K, V](p, seed, hash)
}

// Sorter is the distributed PIM sample sorter (future-work extension).
type Sorter = pimsort.Sorter

// SortStats reports a Sorter run's cost metrics.
type SortStats = pimsort.Stats

// NewSorter constructs a sorter over p modules.
func NewSorter(p int, seed uint64) *Sorter {
	return pimsort.New(p, seed)
}
