// Package pimgo is the public facade of the PIM-model reproduction: it
// re-exports the skip list (the paper's contribution), its configuration
// and statistics types, and the companion structures, so downstream users
// write `import "pimgo"` and never touch internal packages directly.
//
//	m := pimgo.NewMap[uint64, int64](pimgo.Config{P: 16, Seed: 42}, pimgo.Uint64Hash)
//	m.Upsert(keys, vals)
//	res, stats := m.Successor(queries)
//
// See README.md for the architecture and EXPERIMENTS.md for the paper
// reproduction; the full API documentation lives on the aliased types.
package pimgo

import (
	"cmp"

	"pimgo/internal/core"
	"pimgo/internal/pim"
	"pimgo/internal/pimmap"
	"pimgo/internal/pimsort"
)

// Config configures a Map (see core.Config for field documentation).
type Config = core.Config

// BatchStats carries the PIM-model cost metrics of one batch.
type BatchStats = core.BatchStats

// Map is the PIM-balanced batch-parallel skip list of the paper.
type Map[K cmp.Ordered, V any] = core.Map[K, V]

// SearchResult is the outcome of a Predecessor/Successor operation.
type SearchResult[K cmp.Ordered, V any] = core.SearchResult[K, V]

// GetResult is the outcome of a Get operation.
type GetResult[V any] = core.GetResult[V]

// RangeOp describes one range operation over [Lo, Hi].
type RangeOp[K cmp.Ordered, V any] = core.RangeOp[K, V]

// RangePair is one key-value pair returned by range reads.
type RangePair[K cmp.Ordered, V any] = core.RangePair[K, V]

// RangeResult is the outcome of one range operation.
type RangeResult[K cmp.Ordered, V any] = core.RangeResult[K, V]

// RangeKind selects what a range operation does (count, read, transform).
type RangeKind = core.RangeKind

// Range operation kinds.
const (
	RangeCount     = core.RangeCount
	RangeRead      = core.RangeRead
	RangeTransform = core.RangeTransform
)

// Typed errors of the batch API; match with errors.Is. The legacy
// two-value methods panic with these values on caller mistakes; the Try*
// variants return them.
var (
	// ErrBadConfig reports an invalid Config (TryNewMap).
	ErrBadConfig = core.ErrBadConfig
	// ErrBadBatch reports malformed batch arguments, e.g. a keys/vals
	// length mismatch.
	ErrBadBatch = core.ErrBadBatch
	// ErrClosed reports use of a Map after Close.
	ErrClosed = core.ErrClosed
	// ErrInvalidModule reports a send routed outside [0, P).
	ErrInvalidModule = core.ErrInvalidModule
	// ErrFaultUnrecoverable reports that an installed fault plan defeated
	// the reliable transport's retransmit budget; see docs/MODEL.md.
	ErrFaultUnrecoverable = core.ErrFaultUnrecoverable
)

// FaultPlan injects deterministic message/module faults into the simulated
// machine; install one via Config.Fault. Nil means the paper's reliable
// network (the default, with zero simulation overhead).
type FaultPlan = core.FaultPlan

// FaultConfig parameterizes NewSeededFaultPlan.
type FaultConfig = core.FaultConfig

// FaultStats reports what a plan injected and what recovery cost; read it
// with Map.FaultStats.
type FaultStats = core.FaultStats

// NewSeededFaultPlan builds the deterministic built-in plan: every
// decision is a pure hash of (seed, round, module, message), so a faulted
// run replays bit-identically across runs and GOMAXPROCS settings.
func NewSeededFaultPlan(cfg FaultConfig) FaultPlan { return core.NewSeededFaultPlan(cfg) }

// Single-fault convenience plans (rates in basis points of 10000).
func DropFaultPlan(seed uint64, bp int) FaultPlan  { return pim.DropPlan(seed, bp) }
func DupFaultPlan(seed uint64, bp int) FaultPlan   { return pim.DupPlan(seed, bp) }
func DelayFaultPlan(seed uint64, bp, maxDelay int) FaultPlan {
	return pim.DelayPlan(seed, bp, maxDelay)
}
func StallFaultPlan(seed uint64, bp int, factor int64) FaultPlan {
	return pim.StallPlan(seed, bp, factor)
}
func CrashFaultPlan(seed uint64, bp, rounds int) FaultPlan { return pim.CrashPlan(seed, bp, rounds) }

// ChaosFaultPlan mixes drops, duplicates, delays, stalls, and crashes at
// moderate rates — the plan the chaos soak and `pimbench chaos` use.
func ChaosFaultPlan(seed uint64) FaultPlan { return pim.ChaosPlan(seed) }

// NewMap constructs an empty PIM skip list on a fresh simulated machine.
func NewMap[K cmp.Ordered, V any](cfg Config, hash func(K) uint64) *Map[K, V] {
	return core.New[K, V](cfg, hash)
}

// TryNewMap is NewMap with the error convention: an invalid Config or nil
// hasher returns ErrBadConfig instead of panicking.
func TryNewMap[K cmp.Ordered, V any](cfg Config, hash func(K) uint64) (*Map[K, V], error) {
	return core.TryNew[K, V](cfg, hash)
}

// RestoreMap builds a Map from a Snapshot in O(1) network rounds.
func RestoreMap[K cmp.Ordered, V any](cfg Config, hash func(K) uint64, keys []K, vals []V) (*Map[K, V], BatchStats) {
	return core.Restore(cfg, hash, keys, vals)
}

// Ready-made key hashers.
var (
	Uint64Hash = core.Uint64Hash
	Int64Hash  = core.Int64Hash
	IntHash    = core.IntHash
	StringHash = core.StringHash
)

// HashMap is the unordered companion structure (future-work extension).
type HashMap[K comparable, V any] = pimmap.Map[K, V]

// NewHashMap constructs a PIM hash map over p modules.
func NewHashMap[K comparable, V any](p int, seed uint64, hash func(K) uint64) *HashMap[K, V] {
	return pimmap.New[K, V](p, seed, hash)
}

// Sorter is the distributed PIM sample sorter (future-work extension).
type Sorter = pimsort.Sorter

// SortStats reports a Sorter run's cost metrics.
type SortStats = pimsort.Stats

// NewSorter constructs a sorter over p modules.
func NewSorter(p int, seed uint64) *Sorter {
	return pimsort.New(p, seed)
}
