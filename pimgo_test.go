package pimgo

import (
	"testing"
)

// The facade must be fully usable without importing internals.
func TestFacadeMap(t *testing.T) {
	m := NewMap[uint64, int64](Config{P: 8, Seed: 1}, Uint64Hash)
	ins, st := m.Upsert([]uint64{5, 1, 9}, []int64{50, 10, 90})
	if len(ins) != 3 || st.Batch != 3 {
		t.Fatalf("upsert: %v %v", ins, st)
	}
	s, _ := m.SuccessorOne(2)
	if !s.Found || s.Key != 5 {
		t.Fatalf("successor = %+v", s)
	}
	rr, _ := m.RangeBroadcast(RangeOp[uint64, int64]{Lo: 1, Hi: 9, Kind: RangeRead})
	if rr.Count != 3 {
		t.Fatalf("range = %+v", rr)
	}
	keys, vals, _ := m.Snapshot()
	m2, _ := RestoreMap(Config{P: 4, Seed: 2}, Uint64Hash, keys, vals)
	if m2.Len() != 3 {
		t.Fatalf("restored len = %d", m2.Len())
	}
	if err := m2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeStringKeys(t *testing.T) {
	m := NewMap[string, string](Config{P: 4, Seed: 3}, StringHash)
	m.Upsert([]string{"b", "a"}, []string{"B", "A"})
	got, _ := m.Get([]string{"a"})
	if !got[0].Found || got[0].Value != "A" {
		t.Fatalf("got %+v", got[0])
	}
}

func TestFacadeHashMap(t *testing.T) {
	h := NewHashMap[uint64, int64](8, 4, Uint64Hash)
	h.Put([]uint64{1, 2}, []int64{10, 20})
	got, _ := h.Get([]uint64{2, 3})
	if !got[0].Found || got[0].Value != 20 || got[1].Found {
		t.Fatalf("hashmap get: %+v", got)
	}
}

func TestFacadeSorter(t *testing.T) {
	s := NewSorter(8, 5)
	s.Load([]uint64{5, 3, 9, 1})
	var st SortStats = s.Sort()
	if st.Rounds == 0 {
		t.Fatal("no rounds recorded")
	}
	got := s.Collect()
	want := []uint64{1, 3, 5, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sorted = %v", got)
		}
	}
}
