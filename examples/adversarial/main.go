// adversarial: the paper's central claim, live — the PIM skip list keeps
// its performance under adversary-controlled batches while the
// range-partitioned design (prior work, §2.2) collapses.
//
// Five workloads hit both structures with identical Get batches; the
// same-successor adversary additionally hits batched Successor, comparing
// the pivoted algorithm against the naive execution (§4.2).
package main

import (
	"fmt"

	"pimgo/internal/adversary"
	"pimgo/internal/baseline"
	"pimgo/internal/core"
)

const (
	modules = 32
	nKeys   = 1 << 14
	space   = uint64(1) << 40
)

func lg(p int) int {
	l := 1
	for 1<<l < p {
		l++
	}
	return l
}

func main() {
	fmt.Printf("adversarial batches, P=%d, n=%d\n\n", modules, nKeys)
	batch := modules * lg(modules)

	fmt.Printf("%-15s %10s %10s %12s %12s\n", "workload", "ours IO", "prior IO", "ours bal", "prior bal")
	for _, w := range adversary.Workloads() {
		if w == adversary.SameSuccessor {
			continue // covered below with Successor batches
		}
		g := adversary.NewGen(1, space)
		seed := g.Batch(adversary.Uniform, nKeys)
		vals := make([]int64, nKeys)

		ours := core.New[uint64, int64](core.Config{P: modules, Seed: 2}, core.Uint64Hash)
		ours.Upsert(seed, vals)
		prior := baseline.New[uint64, int64](modules, 2, baseline.UniformSplitters(modules, space))
		prior.Upsert(seed, vals)

		keys := g.Batch(w, batch)
		_, so := ours.Get(keys)
		_, sp := prior.Get(keys)
		fmt.Printf("%-15s %10d %10d %12.2f %12.2f\n",
			w, so.IOTime, sp.IOTime, so.PIMBalanceWork(modules), sp.PIMBalanceWork(modules))
	}

	fmt.Println("\nsame-successor adversary vs batched Successor (ours, pivoted vs naive §4.2):")
	succBatch := modules * lg(modules) * lg(modules)
	for _, naive := range []bool{false, true} {
		cfg := core.Config{P: modules, Seed: 3, NaiveBatch: naive, TrackAccess: true}
		m := core.New[uint64, int64](cfg, core.Uint64Hash)
		g := adversary.NewGen(4, space)
		anchors := g.SparseAnchors(nKeys)
		m.Upsert(anchors, make([]int64, len(anchors)))
		keys := g.Batch(adversary.SameSuccessor, succBatch)
		res, st := m.Successor(keys)
		// Sanity: every query really does share one successor.
		for _, r := range res {
			if !r.Found || r.Key != res[0].Key {
				panic("adversary construction broken")
			}
		}
		name := "pivoted"
		if naive {
			name = "naive  "
		}
		fmt.Printf("  %s  IO=%7d  PIM=%7d  max node accesses=%5d (batch %d)\n",
			name, st.IOTime, st.PIMTime, st.MaxNodeAccess, succBatch)
	}
	fmt.Println("\nThe pivoted algorithm's per-node contention stays O(1) per phase (Lemma 4.2);")
	fmt.Println("the naive execution funnels the whole batch through one path.")
}
