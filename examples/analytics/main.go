// analytics: time-series analytics over a PIM-resident ordered index —
// events keyed by timestamp, queried with windowed counts, scans, and
// in-place windowed updates (RangeTransform as fetch-and-add), choosing
// between the two range-execution strategies by window size (§5.1 vs §5.2).
package main

import (
	"fmt"

	"pimgo/internal/core"
	"pimgo/internal/rng"
)

const (
	modules = 64
	events  = 1 << 15
	daySecs = 86400
)

func main() {
	idx := core.New[uint64, int64](core.Config{P: modules, Seed: 11}, core.Uint64Hash)
	r := rng.NewXoshiro256(12)

	// Ingest a week of events: timestamp (seconds, jittered) → latency(µs).
	var t0 uint64 = 1_700_000_000
	keys := make([]uint64, events)
	vals := make([]int64, events)
	ts := t0
	for i := range keys {
		ts += 1 + r.Uint64n(36) // ~1 event / 18s
		keys[i] = ts
		vals[i] = int64(100 + r.Uint64n(900))
	}
	_, st := idx.Upsert(keys, vals)
	fmt.Printf("ingested %d events spanning %.1f days (IO=%d, PIM=%d)\n\n",
		events, float64(ts-t0)/daySecs, st.IOTime, st.PIMTime)

	// Large window (one day): broadcast execution — every module holds a
	// share of the window, so O(1) rounds and O(K/P) per-module work.
	dayLo, dayHi := t0, t0+daySecs
	day, st := idx.RangeBroadcast(core.RangeOp[uint64, int64]{Lo: dayLo, Hi: dayHi, Kind: core.RangeRead})
	var sum int64
	for _, p := range day.Pairs {
		sum += p.Value
	}
	fmt.Printf("day-1 window (broadcast): %d events, mean latency %dµs, rounds=%d IO=%d\n",
		day.Count, sum/max(day.Count, 1), st.Rounds, st.IOTime)

	// Many small windows (5-minute buckets over one hour): the
	// tree-structured batch only touches the modules owning those keys.
	var ops []core.RangeOp[uint64, int64]
	for w := uint64(0); w < 12; w++ {
		lo := t0 + 3*daySecs + w*300
		ops = append(ops, core.RangeOp[uint64, int64]{Lo: lo, Hi: lo + 299, Kind: core.RangeCount})
	}
	counts, st := idx.RangeTree(ops)
	fmt.Printf("\n5-minute buckets, day 4 hour 0 (tree batch, IO=%d):\n  ", st.IOTime)
	for _, c := range counts {
		fmt.Printf("%3d ", c.Count)
	}
	fmt.Println()

	// Windowed correction: a clock-skew incident doubled recorded latency
	// during one 10-minute window; fix it in place with a RangeTransform.
	fixLo := t0 + 3*daySecs + 600
	fixHi := fixLo + 599
	before, _ := idx.RangeTreeOne(core.RangeOp[uint64, int64]{Lo: fixLo, Hi: fixHi, Kind: core.RangeRead})
	fixed, st := idx.RangeTree([]core.RangeOp[uint64, int64]{{
		Lo: fixLo, Hi: fixHi, Kind: core.RangeTransform,
		Transform: func(v int64) int64 { return v / 2 },
	}})
	after, _ := idx.RangeTreeOne(core.RangeOp[uint64, int64]{Lo: fixLo, Hi: fixHi, Kind: core.RangeRead})
	fmt.Printf("\ncorrected %d events in [%d,%d] (IO=%d): first value %d -> %d\n",
		fixed[0].Count, fixLo, fixHi, st.IOTime, before.Pairs[0].Value, after.Pairs[0].Value)

	// Ordered navigation: the first event after an incident timestamp.
	probe := t0 + 5*daySecs + 1234
	nxt, _ := idx.SuccessorOne(probe)
	fmt.Printf("\nfirst event at/after t=%d: t=%d latency=%dµs\n", probe, nxt.Key, nxt.Value)

	if err := idx.CheckInvariants(); err != nil {
		panic(err)
	}
	fmt.Println("invariants: ok")
}
