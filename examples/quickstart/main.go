// Quickstart: build a PIM skip list, run every batch operation once, and
// read the PIM-model cost metrics that come back with each batch.
package main

import (
	"fmt"

	"pimgo/internal/core"
)

func main() {
	// A machine with 16 PIM modules. The structure replicates its top
	// log2(16) = 4 levels in every module and hash-distributes the rest.
	m := core.New[uint64, int64](core.Config{P: 16, Seed: 42}, core.Uint64Hash)

	// Batched Upsert: all operations in a batch run in parallel across the
	// modules; each call returns the model's cost metrics for that batch.
	keys := []uint64{10, 20, 30, 40, 50, 60, 70, 80}
	vals := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	inserted, st := m.Upsert(keys, vals)
	fmt.Println("upsert inserted:", inserted)
	fmt.Println("upsert cost:    ", st)

	// Batched Get.
	got, st := m.Get([]uint64{20, 25, 60})
	for i, g := range got {
		fmt.Printf("get %v -> found=%v value=%v\n", []uint64{20, 25, 60}[i], g.Found, g.Value)
	}
	fmt.Println("get cost:       ", st)

	// Successor / Predecessor: ordered queries, the reason to use a skip
	// list rather than a hash table.
	succ, _ := m.SuccessorOne(35)
	pred, _ := m.PredecessorOne(35)
	fmt.Printf("successor(35) = %+v\n", succ)
	fmt.Printf("predecessor(35) = %+v\n", pred)

	// Range operations, both execution strategies.
	sum := int64(0)
	read, _ := m.RangeBroadcast(core.RangeOp[uint64, int64]{Lo: 20, Hi: 60, Kind: core.RangeRead})
	for _, p := range read.Pairs {
		sum += p.Value
	}
	fmt.Printf("range [20,60] broadcast: %d pairs, value sum %d\n", read.Count, sum)
	cnt, _ := m.RangeTreeOne(core.RangeOp[uint64, int64]{Lo: 20, Hi: 60, Kind: core.RangeCount})
	fmt.Printf("range [20,60] tree:      %d pairs\n", cnt.Count)

	// Batched Delete.
	found, _ := m.Delete([]uint64{30, 99})
	fmt.Println("delete found:", found)
	fmt.Println("remaining keys in order:", m.KeysInOrder())

	// The structure can always verify itself.
	if err := m.CheckInvariants(); err != nil {
		panic(err)
	}
	fmt.Println("invariants: ok")
}
