// kvstore: an ordered key-value store on the PIM skip list — the workload
// the paper's introduction motivates (an in-memory index too big for the
// CPU cache, maintained under batch-parallel updates and queries).
//
// The store ingests orders keyed by (timestamp-ordered) order IDs, serves
// point lookups, ordered scans ("the 50 orders after X"), and windowed
// deletions (retention).
//
// By default the store is served through pimgo.Frontend: many client
// goroutines issue one operation at a time and the collector coalesces
// them into amortized Map batches (docs/FRONTEND.md). Run with -direct
// for the original single-caller batch API on the same workload — the
// printed per-batch PIM-model costs are the comparison the frontend's
// coalescing statistics should be read against.
package main

import (
	"flag"
	"fmt"
	"sync"

	"pimgo"
	"pimgo/internal/rng"
)

const (
	modules   = 32
	batchSize = 2048
	batches   = 16
)

func main() {
	direct := flag.Bool("direct", false,
		"serve through the single-caller batch API instead of the concurrent frontend")
	flag.Parse()
	if *direct {
		runDirect()
		return
	}
	runFrontend()
}

// runFrontend serves the store the way a real deployment would: concurrent
// client goroutines, each issuing one operation at a time, coalesced by the
// frontend collector into amortized batches.
func runFrontend() {
	store := pimgo.NewMap[uint64, int64](pimgo.Config{P: modules, Seed: 7}, pimgo.Uint64Hash)
	f := pimgo.NewFrontend(store, pimgo.FrontendConfig{})

	const clients = 64
	const ordersPerClient = (batchSize * batches) / clients

	fmt.Printf("ordered KV store on %d PIM modules, %d concurrent clients\n\n", modules, clients)

	// Ingest: every client inserts its own ascending-ish ID stream (sparse,
	// with jitter, as real ID generators produce), one Upsert at a time.
	// Client c owns IDs ≡ c (mod clients), so streams never collide.
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := rng.NewXoshiro256(99 + uint64(c))
			id := uint64(1<<20) + uint64(c)
			for i := 0; i < ordersPerClient; i++ {
				id += uint64(clients) * (1 + r.Uint64n(64))
				if _, err := f.Upsert(id, int64(r.Uint64n(10000))); err != nil {
					panic(err)
				}
			}
		}(c)
	}
	wg.Wait()
	st := f.Stats()
	fmt.Printf("ingest: %d orders via %d single-op calls → %d flushes (mean batch %.1f)\n",
		store.Len(), st.Ops, st.Flushes, float64(st.Ops)/float64(st.Flushes))

	// Serve: each client mixes point lookups (half of them misses) with
	// ordered scans — a Successor, then walking forward one Successor at a
	// time, the single-key flavour of "the orders after X".
	var hits, scanned int64
	var mu sync.Mutex
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := rng.NewXoshiro256(7177 + uint64(c))
			var h, s int64
			for i := 0; i < 64; i++ {
				g, err := f.Get(uint64(1<<20) + r.Uint64n(1<<21))
				if err != nil {
					panic(err)
				}
				if g.Found {
					h++
				}
			}
			cur := uint64(1<<20) + r.Uint64n(1<<21)
			for i := 0; i < 16; i++ { // 16-order forward scan
				sr, err := f.Successor(cur)
				if err != nil {
					panic(err)
				}
				if !sr.Found {
					break
				}
				s++
				cur = sr.Key + 1
			}
			mu.Lock()
			hits += h
			scanned += s
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	st = f.Stats()
	fmt.Printf("serve:  %d lookup hits, %d orders scanned; collector now at %d ops / %d flushes\n",
		hits, scanned, st.Ops, st.Flushes)

	// Retention: clients delete their own oldest orders, one Delete at a
	// time; conflicting writes within a flush would coalesce (none here —
	// the ID streams are disjoint).
	ids := store.KeysInOrder()
	oldest := ids[:len(ids)/4]
	per := (len(oldest) + clients - 1) / clients
	for c := 0; c < clients; c++ {
		lo := c * per
		if lo >= len(oldest) {
			break
		}
		hi := min(lo+per, len(oldest))
		wg.Add(1)
		go func(part []uint64) {
			defer wg.Done()
			for _, id := range part {
				if _, err := f.Delete(id); err != nil {
					panic(err)
				}
			}
		}(oldest[lo:hi])
	}
	wg.Wait()
	st = f.Stats()
	fmt.Printf("retention: deleted %d oldest orders\n\n", len(oldest))
	fmt.Printf("collector totals: %d ops in %d flushes (mean batch %.1f, max %d), %d submitted after coalescing\n",
		st.Ops, st.Flushes, float64(st.Ops)/float64(st.Flushes), st.MaxFlush, st.Submitted)

	// Range aggregates are batch-API territory: close the frontend (the Map
	// stays open) and hand the store back to the direct caller.
	f.Close()
	lo, hi := ids[len(ids)/4], ids[3*len(ids)/4]
	all, bst := store.RangeBroadcast(pimgo.RangeOp[uint64, int64]{Lo: lo, Hi: hi, Kind: pimgo.RangeRead})
	var total int64
	for _, p := range all.Pairs {
		total += p.Value
	}
	fmt.Printf("aggregate [%d, %d] after Close: %d orders, %d cents (1 round, IO=%d)\n",
		lo, hi, all.Count, total, bst.IOTime)

	if err := store.CheckInvariants(); err != nil {
		panic(err)
	}
	fmt.Printf("final store: %d orders, invariants ok\n", store.Len())
}

// runDirect is the pre-frontend path: one caller building explicit batches.
// Kept as the comparison baseline — the per-batch PIM costs printed here are
// what the frontend's coalesced flushes achieve for free under concurrency.
func runDirect() {
	store := pimgo.NewMap[uint64, int64](pimgo.Config{P: modules, Seed: 7}, pimgo.Uint64Hash)
	r := rng.NewXoshiro256(99)

	fmt.Printf("ordered KV store on %d PIM modules (direct batch API)\n\n", modules)

	// Ingest: batch upserts of new order IDs (sparse, ascending-ish with
	// jitter, as real ID generators produce).
	var nextID uint64 = 1 << 20
	fmt.Println("ingest:")
	for b := 0; b < batches; b++ {
		keys := make([]uint64, batchSize)
		vals := make([]int64, batchSize)
		for i := range keys {
			nextID += 1 + r.Uint64n(64)
			keys[i] = nextID
			vals[i] = int64(r.Uint64n(10000)) // order amount, cents
		}
		_, st := store.Upsert(keys, vals)
		if b%4 == 0 {
			fmt.Printf("  batch %2d: n=%7d  IO=%5d  PIM=%5d  rounds=%3d  balance(work)=%.2f\n",
				b, store.Len(), st.IOTime, st.PIMTime, st.Rounds, st.PIMBalanceWork(modules))
		}
	}

	// Point lookups: a mixed batch of hits and misses.
	ids := store.KeysInOrder()
	probe := make([]uint64, 1024)
	for i := range probe {
		if i%2 == 0 {
			probe[i] = ids[int(r.Uint64n(uint64(len(ids))))]
		} else {
			probe[i] = r.Uint64n(nextID) // mostly misses
		}
	}
	res, st := store.Get(probe)
	hits := 0
	for _, g := range res {
		if g.Found {
			hits++
		}
	}
	fmt.Printf("\nlookup batch: %d/%d hits  IO=%d PIM=%d (independent of store size)\n",
		hits, len(probe), st.IOTime, st.PIMTime)

	// Ordered scan: "the 50 orders at or after a given ID" — a Successor
	// to find the start, then a tree range.
	start := ids[len(ids)/2]
	s, _ := store.SuccessorOne(start)
	scan, st := store.RangeTreeOne(pimgo.RangeOp[uint64, int64]{
		Lo: s.Key, Hi: ids[min(len(ids)/2+49, len(ids)-1)], Kind: pimgo.RangeRead,
	})
	fmt.Printf("scan from %d: %d orders, first=%d last=%d  IO=%d\n",
		start, scan.Count, scan.Pairs[0].Key, scan.Pairs[len(scan.Pairs)-1].Key, st.IOTime)

	// Aggregate: total order value over the middle half of the ID space —
	// large range, so the broadcast execution is the right tool.
	lo, hi := ids[len(ids)/4], ids[3*len(ids)/4]
	all, st := store.RangeBroadcast(pimgo.RangeOp[uint64, int64]{Lo: lo, Hi: hi, Kind: pimgo.RangeRead})
	var total int64
	for _, p := range all.Pairs {
		total += p.Value
	}
	fmt.Printf("aggregate [%d, %d]: %d orders, %d cents  (1 round, IO=%d)\n",
		lo, hi, all.Count, total, st.IOTime)

	// Retention: delete the oldest quarter in one batch (a massive
	// consecutive run — the list-contraction stress case).
	oldest := ids[:len(ids)/4]
	_, st = store.Delete(oldest)
	fmt.Printf("\nretention: deleted %d oldest orders  IO=%d PIM=%d balance(work)=%.2f\n",
		len(oldest), st.IOTime, st.PIMTime, st.PIMBalanceWork(modules))

	if err := store.CheckInvariants(); err != nil {
		panic(err)
	}
	fmt.Printf("final store: %d orders, invariants ok\n", store.Len())
}
