// kvstore: an ordered key-value store on the PIM skip list — the workload
// the paper's introduction motivates (an in-memory index too big for the
// CPU cache, maintained under batch-parallel updates and queries).
//
// The store ingests orders keyed by (timestamp-ordered) order IDs, serves
// point lookups, ordered scans ("the 50 orders after X"), and windowed
// deletions (retention), and prints the per-batch PIM-model costs so you
// can see PIM-balance hold as the store grows.
package main

import (
	"fmt"

	"pimgo/internal/core"
	"pimgo/internal/rng"
)

const (
	modules   = 32
	batchSize = 2048
	batches   = 16
)

func main() {
	store := core.New[uint64, int64](core.Config{P: modules, Seed: 7}, core.Uint64Hash)
	r := rng.NewXoshiro256(99)

	fmt.Printf("ordered KV store on %d PIM modules\n\n", modules)

	// Ingest: batch upserts of new order IDs (sparse, ascending-ish with
	// jitter, as real ID generators produce).
	var nextID uint64 = 1 << 20
	fmt.Println("ingest:")
	for b := 0; b < batches; b++ {
		keys := make([]uint64, batchSize)
		vals := make([]int64, batchSize)
		for i := range keys {
			nextID += 1 + r.Uint64n(64)
			keys[i] = nextID
			vals[i] = int64(r.Uint64n(10000)) // order amount, cents
		}
		_, st := store.Upsert(keys, vals)
		if b%4 == 0 {
			fmt.Printf("  batch %2d: n=%7d  IO=%5d  PIM=%5d  rounds=%3d  balance(work)=%.2f\n",
				b, store.Len(), st.IOTime, st.PIMTime, st.Rounds, st.PIMBalanceWork(modules))
		}
	}

	// Point lookups: a mixed batch of hits and misses.
	ids := store.KeysInOrder()
	probe := make([]uint64, 1024)
	for i := range probe {
		if i%2 == 0 {
			probe[i] = ids[int(r.Uint64n(uint64(len(ids))))]
		} else {
			probe[i] = r.Uint64n(nextID) // mostly misses
		}
	}
	res, st := store.Get(probe)
	hits := 0
	for _, g := range res {
		if g.Found {
			hits++
		}
	}
	fmt.Printf("\nlookup batch: %d/%d hits  IO=%d PIM=%d (independent of store size)\n",
		hits, len(probe), st.IOTime, st.PIMTime)

	// Ordered scan: "the 50 orders at or after a given ID" — a Successor
	// to find the start, then a tree range.
	start := ids[len(ids)/2]
	s, _ := store.SuccessorOne(start)
	scan, st := store.RangeTreeOne(core.RangeOp[uint64, int64]{
		Lo: s.Key, Hi: ids[min(len(ids)/2+49, len(ids)-1)], Kind: core.RangeRead,
	})
	fmt.Printf("scan from %d: %d orders, first=%d last=%d  IO=%d\n",
		start, scan.Count, scan.Pairs[0].Key, scan.Pairs[len(scan.Pairs)-1].Key, st.IOTime)

	// Aggregate: total order value over the middle half of the ID space —
	// large range, so the broadcast execution is the right tool.
	lo, hi := ids[len(ids)/4], ids[3*len(ids)/4]
	all, st := store.RangeBroadcast(core.RangeOp[uint64, int64]{Lo: lo, Hi: hi, Kind: core.RangeRead})
	var total int64
	for _, p := range all.Pairs {
		total += p.Value
	}
	fmt.Printf("aggregate [%d, %d]: %d orders, %d cents  (1 round, IO=%d)\n",
		lo, hi, all.Count, total, st.IOTime)

	// Retention: delete the oldest quarter in one batch (a massive
	// consecutive run — the list-contraction stress case).
	oldest := ids[:len(ids)/4]
	_, st = store.Delete(oldest)
	fmt.Printf("\nretention: deleted %d oldest orders  IO=%d PIM=%d balance(work)=%.2f\n",
		len(oldest), st.IOTime, st.PIMTime, st.PIMBalanceWork(modules))

	if err := store.CheckInvariants(); err != nil {
		panic(err)
	}
	fmt.Printf("final store: %d orders, invariants ok\n", store.Len())
}
