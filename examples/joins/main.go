// joins: relational join processing on the PIM model, combining all three
// batch-parallel structures in this repository — the paper's skip list
// (ordered index), plus the future-work companions it motivates: the PIM
// hash map and distributed PIM sample sort.
//
// Scenario: orders ⋈ customers.
//
//   - Hash join: build a PIM hash map on customers, probe with order
//     batches (point lookups; any skew is fine by §4.1-style dedup).
//   - Sort-merge join: PIM-sample-sort the order keys, then stream-merge.
//   - Index join: keep customers in the PIM skip list and answer
//     per-customer order-range scans (tree range operations).
package main

import (
	"fmt"

	"pimgo/internal/core"
	"pimgo/internal/pimmap"
	"pimgo/internal/pimsort"
	"pimgo/internal/rng"
)

const (
	modules    = 32
	nCustomers = 1 << 12
	nOrders    = 1 << 15
)

func main() {
	r := rng.NewXoshiro256(2024)

	// Customers: id → credit limit. Orders: order id → customer id.
	custID := make([]uint64, nCustomers)
	credit := make([]int64, nCustomers)
	for i := range custID {
		custID[i] = uint64(i+1) * 1000
		credit[i] = int64(r.Uint64n(100000))
	}
	orderCust := make([]uint64, nOrders)
	for i := range orderCust {
		// Zipf-ish skew: a few customers place most orders.
		c := r.Uint64n(uint64(nCustomers))
		c = c * c / uint64(nCustomers)
		orderCust[i] = custID[c]
	}

	// --- Hash join ---------------------------------------------------
	hm := pimmap.New[uint64, int64](modules, 7, rng.Mix64)
	_, buildSt := hm.Put(custID, credit)
	matched := 0
	var probeIO int64
	for lo := 0; lo < nOrders; lo += 4096 {
		hi := min(lo+4096, nOrders)
		res, st := hm.Get(orderCust[lo:hi])
		probeIO += st.IOTime
		for _, g := range res {
			if g.Found {
				matched++
			}
		}
	}
	fmt.Printf("hash join:   %d/%d orders matched  buildIO=%d probeIO=%d\n",
		matched, nOrders, buildSt.IOTime, probeIO)
	fmt.Printf("             (skewed probes stay balanced: batch dedup collapses hot customers)\n")

	// --- Sort-merge join ---------------------------------------------
	sorter := pimsort.New(modules, 11)
	sorter.Load(orderCust)
	sortSt := sorter.Sort()
	if err := sorter.Verify(); err != nil {
		panic(err)
	}
	sorted := sorter.Collect()
	// customers are already sorted by construction; merge.
	merged, i := 0, 0
	for _, oc := range sorted {
		for i < len(custID) && custID[i] < oc {
			i++
		}
		if i < len(custID) && custID[i] == oc {
			merged++
		}
	}
	fmt.Printf("sort-merge:  %d orders matched      sortIO=%d sortPIM=%d rounds=%d\n",
		merged, sortSt.IOTime, sortSt.PIMTime, sortSt.Rounds)

	// --- Index join (ordered scans per customer) ---------------------
	// Orders keyed by (custID << 20 | seq) live in the ordered index; a
	// per-customer join is a range scan over that customer's key stripe.
	idx := core.New[uint64, int64](core.Config{P: modules, Seed: 13}, core.Uint64Hash)
	okeys := make([]uint64, nOrders)
	ovals := make([]int64, nOrders)
	for i := range okeys {
		okeys[i] = orderCust[i]<<20 | uint64(i)
		ovals[i] = int64(i)
	}
	idx.Upsert(okeys, ovals)

	// Batch of per-customer range scans for 200 sampled customers.
	ops := make([]core.RangeOp[uint64, int64], 0, 200)
	for k := 0; k < 200; k++ {
		c := custID[r.Intn(nCustomers)]
		ops = append(ops, core.RangeOp[uint64, int64]{
			Lo: c << 20, Hi: c<<20 | (1<<20 - 1), Kind: core.RangeCount,
		})
	}
	counts, rangeSt := idx.RangeTree(ops)
	totalScanned := int64(0)
	for _, c := range counts {
		totalScanned += c.Count
	}
	fmt.Printf("index join:  %d orders scanned across 200 customers  IO=%d PIM=%d\n",
		totalScanned, rangeSt.IOTime, rangeSt.PIMTime)

	if err := idx.CheckInvariants(); err != nil {
		panic(err)
	}
	if matched != merged {
		panic(fmt.Sprintf("join results disagree: hash=%d merge=%d", matched, merged))
	}
	fmt.Println("\nall three joins agree; invariants ok")
}
