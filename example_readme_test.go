package pimgo_test

import (
	"fmt"

	"pimgo"
)

// Example mirrors the README quickstart, so the snippet there is verified
// by `go test` and cannot rot.
func Example() {
	m := pimgo.NewMap[uint64, int64](pimgo.Config{P: 16, Seed: 42}, pimgo.Uint64Hash)

	inserted, stats := m.Upsert([]uint64{10, 20, 30}, []int64{1, 2, 3})
	res, _ := m.Successor([]uint64{15})
	rr, _ := m.RangeBroadcast(pimgo.RangeOp[uint64, int64]{Lo: 10, Hi: 25, Kind: pimgo.RangeRead})

	n := 0
	for _, fresh := range inserted {
		if fresh {
			n++
		}
	}
	fmt.Println("inserted:", n)
	fmt.Println("successor of 15:", res[0].Key, res[0].Value)
	fmt.Println("pairs in [10,25]:", len(rr.Pairs))
	fmt.Println("metrics nonzero:", stats.Rounds > 0 && stats.IOTime > 0)
	// Output:
	// inserted: 3
	// successor of 15: 20 2
	// pairs in [10,25]: 2
	// metrics nonzero: true
}
