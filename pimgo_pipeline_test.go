package pimgo

// Pipeline oracle tests (ISSUE 8 tentpole): the two-deep execution pipeline
// must be observationally identical to the serial schedule — same replies,
// same BatchStats, same trace event stream, same fault counters — across
// GOMAXPROCS and under every built-in fault plan. Wall-clock PipeStats are
// deliberately excluded from every oracle here (docs/PIPELINE.md); the
// recording sink does not implement TracePipeSink, so the pipeline under
// test never even reads the clock.
//
// The zero-allocation guard for the pipelined steady state lives in
// pimgo_alloc_test.go next to the serial guards.

import (
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"strings"
	"testing"
)

// pipeBatch is one step of the pipeline oracle schedule.
type pipeBatch struct {
	op   string // "upsert", "get", "delete", "succ", "pred"
	keys []uint64
	vals []int64
}

// pipeSchedule builds a deterministic mixed schedule over every pipelined op
// kind: wildly varying sizes, empty batches, and heavy duplicate keys (the
// semisort path), so both pipeline workspaces are repeatedly grown, shrunk,
// and switched between op layouts while batches overlap.
func pipeSchedule() []pipeBatch {
	state := uint64(0xBADC0FFEE0DDF00D)
	next := func(n uint64) uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state % n
	}
	ops := []string{"upsert", "get", "succ", "delete", "pred", "upsert", "get"}
	sizes := []int{64, 200, 0, 33, 128, 500, 1, 0, 77, 256, 8, 3, 192, 16, 400, 5, 0, 64, 100, 31}
	var sched []pipeBatch
	for i, sz := range sizes {
		b := pipeBatch{op: ops[i%len(ops)]}
		for j := 0; j < sz; j++ {
			k := 1 + next(1<<13) // small key space: plenty of in-batch duplicates
			if j%7 == 3 && j > 0 {
				k = b.keys[j-1] // explicit adjacent duplicate
			}
			b.keys = append(b.keys, k)
			b.vals = append(b.vals, int64(k*5+uint64(i)))
		}
		sched = append(sched, b)
	}
	return sched
}

// pipeFingerprint is everything one schedule run observes.
type pipeFingerprint struct {
	stats  []BatchStats
	errs   []string
	digest uint64
	strSum uint64
	faults FaultStats
}

func digestGets(h *fnv64w, res []GetResult[int64]) {
	for _, r := range res {
		fmt.Fprintf(h, "g%v:%v", r.Found, r.Value)
	}
}

func digestBools(h *fnv64w, tag string, res []bool) {
	for _, v := range res {
		fmt.Fprintf(h, "%s%v", tag, v)
	}
}

func digestSearches(h *fnv64w, res []SearchResult[uint64, int64]) {
	for _, r := range res {
		fmt.Fprintf(h, "s%v:%v:%v", r.Found, r.Key, r.Value)
	}
}

type fnv64w = strings.Builder

func finishPipe(m *Map[uint64, int64], fp *pipeFingerprint, h *fnv64w) {
	sum := fnv.New64a()
	sum.Write([]byte(h.String()))
	fp.digest = sum.Sum64()
	snapKeys, snapVals, _ := m.Snapshot()
	str := fnv.New64a()
	for i := range snapKeys {
		fmt.Fprintf(str, "%v=%v;", snapKeys[i], snapVals[i])
	}
	fp.strSum = str.Sum64()
	fp.faults = m.FaultStats()
}

// runPipeSerial replays the schedule through the serial Try* entry points.
func runPipeSerial(m *Map[uint64, int64], sched []pipeBatch) pipeFingerprint {
	var fp pipeFingerprint
	var h fnv64w
	for _, b := range sched {
		var st BatchStats
		var err error
		switch b.op {
		case "upsert":
			var res []bool
			res, st, err = m.TryUpsert(b.keys, b.vals)
			if err == nil {
				digestBools(&h, "u", res)
			}
		case "get":
			var res []GetResult[int64]
			res, st, err = m.TryGet(b.keys)
			if err == nil {
				digestGets(&h, res)
			}
		case "delete":
			var res []bool
			res, st, err = m.TryDelete(b.keys)
			if err == nil {
				digestBools(&h, "d", res)
			}
		case "succ":
			var res []SearchResult[uint64, int64]
			res, st, err = m.TrySuccessor(b.keys)
			if err == nil {
				digestSearches(&h, res)
			}
		case "pred":
			var res []SearchResult[uint64, int64]
			res, st, err = m.TryPredecessor(b.keys)
			if err == nil {
				digestSearches(&h, res)
			}
		}
		fp.stats = append(fp.stats, st)
		fp.errs = append(fp.errs, fmt.Sprint(err))
	}
	finishPipe(m, &fp, &h)
	return fp
}

// submitPipe enqueues one scheduled batch with nil dst (each in-flight batch
// owns its results).
func submitPipe(p *Pipeline[uint64, int64], b pipeBatch) *PipelineTicket[uint64, int64] {
	switch b.op {
	case "upsert":
		return p.SubmitUpsert(b.keys, b.vals, nil)
	case "get":
		return p.SubmitGet(b.keys, nil)
	case "delete":
		return p.SubmitDelete(b.keys, nil)
	case "succ":
		return p.SubmitSuccessor(b.keys, nil)
	default: // "pred"
		return p.SubmitPredecessor(b.keys, nil)
	}
}

// runPipePipelined drives the schedule through a Pipeline. All batches are
// submitted before any ticket is awaited: the two-slot free list throttles
// submission, so batches genuinely overlap (batch k+1 preps while batch k
// executes) while tickets still resolve in FIFO order.
func runPipePipelined(m *Map[uint64, int64], sched []pipeBatch) pipeFingerprint {
	p := NewPipeline(m)
	tks := make([]*PipelineTicket[uint64, int64], len(sched))
	for i, b := range sched {
		tks[i] = submitPipe(p, b)
	}
	var fp pipeFingerprint
	var h fnv64w
	for i, tk := range tks {
		res := tk.Wait()
		fp.stats = append(fp.stats, res.Stats)
		fp.errs = append(fp.errs, fmt.Sprint(res.Err))
		if res.Err != nil {
			continue
		}
		switch sched[i].op {
		case "upsert":
			digestBools(&h, "u", res.Bools)
		case "get":
			digestGets(&h, res.Gets)
		case "delete":
			digestBools(&h, "d", res.Bools)
		case "succ", "pred":
			digestSearches(&h, res.Searches)
		}
	}
	p.Close()
	finishPipe(m, &fp, &h)
	return fp
}

func comparePipeFingerprints(t *testing.T, label string, got, want pipeFingerprint) {
	t.Helper()
	if got.digest != want.digest {
		t.Errorf("%s: reply digest %x != serial %x", label, got.digest, want.digest)
	}
	if got.strSum != want.strSum {
		t.Errorf("%s: final structure hash %x != serial %x", label, got.strSum, want.strSum)
	}
	if got.faults != want.faults {
		t.Errorf("%s: fault stats diverge:\n  got  %+v\n  want %+v", label, got.faults, want.faults)
	}
	if len(got.stats) != len(want.stats) {
		t.Fatalf("%s: %d batches vs %d", label, len(got.stats), len(want.stats))
	}
	for i := range got.stats {
		if got.errs[i] != want.errs[i] {
			t.Errorf("%s: batch %d error %q != serial %q", label, i, got.errs[i], want.errs[i])
		}
		if got.stats[i] != want.stats[i] {
			t.Errorf("%s: batch %d stats diverge:\n  got  %+v\n  want %+v",
				label, i, got.stats[i], want.stats[i])
		}
	}
}

// TestPipelineBitIdenticalToSerial is the tentpole oracle: the pipelined
// schedule must produce, at every thread count, exactly the replies, the
// per-batch BatchStats, the final structure, and (fault-free here) zero
// fault counters of the serial schedule.
func TestPipelineBitIdenticalToSerial(t *testing.T) {
	sched := pipeSchedule()
	cfg := Config{P: 16, Seed: 2024}

	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)

	ref := runPipeSerial(NewMap[uint64, int64](cfg, Uint64Hash), sched)
	for _, gmp := range []int{1, 4, runtime.NumCPU()} {
		runtime.GOMAXPROCS(gmp)
		serial := runPipeSerial(NewMap[uint64, int64](cfg, Uint64Hash), sched)
		comparePipeFingerprints(t, fmt.Sprintf("serial GOMAXPROCS=%d", gmp), serial, ref)
		piped := runPipePipelined(NewMap[uint64, int64](cfg, Uint64Hash), sched)
		comparePipeFingerprints(t, fmt.Sprintf("pipelined GOMAXPROCS=%d", gmp), piped, ref)
	}
}

// TestPipelineTraceStreamIdenticalToSerial pins the stronger event-level
// contract: a sink installed on a pipelined Map sees the exact serial event
// stream, line for line — BatchStart, the prep phases (replayed at hand-off
// with zero machine deltas), every round, every phase end, every batch end.
// The recording sink does not implement TracePipeSink, so no wall-clock
// events can leak in.
func TestPipelineTraceStreamIdenticalToSerial(t *testing.T) {
	sched := pipeSchedule()
	cfg := Config{P: 16, Seed: 2024}

	serialRec := &recordingSink{}
	ms := NewMap[uint64, int64](cfg, Uint64Hash)
	ms.SetTraceSink(serialRec)
	runPipeSerial(ms, sched)

	pipeRec := &recordingSink{}
	mp := NewMap[uint64, int64](cfg, Uint64Hash)
	mp.SetTraceSink(pipeRec)
	runPipePipelined(mp, sched)

	if len(serialRec.lines) != len(pipeRec.lines) {
		t.Fatalf("event counts diverge: serial %d, pipelined %d",
			len(serialRec.lines), len(pipeRec.lines))
	}
	for i := range serialRec.lines {
		if serialRec.lines[i] != pipeRec.lines[i] {
			t.Fatalf("event %d diverges:\n  serial    %s\n  pipelined %s",
				i, serialRec.lines[i], pipeRec.lines[i])
		}
	}
}

// TestPipelineChaosSoak extends the oracle to faulted runs: under every
// built-in fault plan, the pipelined schedule must reproduce the serial
// schedule's replies, stats (including recovery inflation), typed errors,
// and fault counters exactly. Fault fates key on per-send logical ids
// assigned in submission order, and the pipeline's executor issues sends in
// the serial order, so even drop/dup/crash decisions land identically.
func TestPipelineChaosSoak(t *testing.T) {
	sched := pipeSchedule()
	plans := []struct {
		name string
		plan func() FaultPlan
	}{
		{"drop", func() FaultPlan { return DropFaultPlan(0xE1, 200) }},
		{"dup", func() FaultPlan { return DupFaultPlan(0xE2, 200) }},
		{"delay", func() FaultPlan { return DelayFaultPlan(0xE3, 200, 3) }},
		{"stall", func() FaultPlan { return StallFaultPlan(0xE4, 200, 4) }},
		{"crash", func() FaultPlan { return CrashFaultPlan(0xE5, 30, 2) }},
		{"chaos", func() FaultPlan { return ChaosFaultPlan(0xE6) }},
		{"seeded", func() FaultPlan {
			return NewSeededFaultPlan(FaultConfig{
				Seed: 0xE7, DropBP: 100, DupBP: 100, DelayBP: 100,
				MaxDelay: 2, StallBP: 100, StallFactor: 3,
			})
		}},
	}
	cfg := Config{P: 16, Seed: 2024}
	for _, tc := range plans {
		t.Run(tc.name, func(t *testing.T) {
			scfg := cfg
			scfg.Fault = tc.plan()
			serial := runPipeSerial(NewMap[uint64, int64](scfg, Uint64Hash), sched)
			if serial.faults == (FaultStats{}) {
				t.Fatalf("fault plan installed but no faults fired")
			}
			pcfg := cfg
			pcfg.Fault = tc.plan()
			piped := runPipePipelined(NewMap[uint64, int64](pcfg, Uint64Hash), sched)
			comparePipeFingerprints(t, "pipelined", piped, serial)
		})
	}
}

// TestPipelineProfileMatchesSerial drives both schedules under a
// TraceProfile: the per-op, per-phase attribution tables must agree exactly
// (the pipeline adds only the separate wall-clock Pipeline() aggregate,
// which must have seen every batch).
func TestPipelineProfileMatchesSerial(t *testing.T) {
	sched := pipeSchedule()

	sp := NewTraceProfile()
	runPipeSerial(NewMap[uint64, int64](Config{P: 16, Seed: 2024, Trace: sp}, Uint64Hash), sched)

	pp := NewTraceProfile()
	runPipePipelined(NewMap[uint64, int64](Config{P: 16, Seed: 2024, Trace: pp}, Uint64Hash), sched)

	if got, want := pp.String(), sp.String(); got != want {
		t.Errorf("pipelined profile table diverges:\n--- pipelined ---\n%s--- serial ---\n%s", got, want)
	}
	for _, agg := range pp.ByOp() {
		if msg := agg.CheckSums(); msg != "" {
			t.Errorf("pipelined aggregate %s: %s", agg.Op, msg)
		}
	}
	pt := pp.Pipeline()
	if pt.Batches != int64(len(sched)) {
		t.Errorf("pipeline totals saw %d batches, want %d", pt.Batches, len(sched))
	}
	var ops int64
	for _, b := range sched {
		ops += int64(len(b.keys))
	}
	if pt.Ops != ops {
		t.Errorf("pipeline totals saw %d ops, want %d", pt.Ops, ops)
	}
	if pt.Exec <= 0 {
		t.Errorf("pipeline totals report no exec time: %+v", pt)
	}
	if st := sp.Pipeline(); st.Batches != 0 {
		t.Errorf("serial profile unexpectedly saw pipeline events: %+v", st)
	}
}

// TestPipelineErrors pins the error surface: misuse resolves through the
// ticket (never a panic or a sync error), Close is idempotent and drains,
// and the Map is serially usable again after Close.
func TestPipelineErrors(t *testing.T) {
	m := NewMap[uint64, int64](Config{P: 8, Seed: 9}, Uint64Hash)
	p := NewPipeline(m)

	if res := p.SubmitUpsert([]uint64{1, 2}, []int64{1}, nil).Wait(); !errors.Is(res.Err, ErrBadBatch) {
		t.Fatalf("length mismatch: err = %v, want ErrBadBatch", res.Err)
	}
	tk := p.SubmitUpsert([]uint64{1, 2, 3}, []int64{10, 20, 30}, nil)
	p.Drain()
	if res := tk.Wait(); res.Err != nil || res.Stats.Batch != 3 {
		t.Fatalf("post-Drain ticket: %+v", res)
	}
	p.Close()
	p.Close() // idempotent
	if res := p.SubmitGet([]uint64{1}, nil).Wait(); !errors.Is(res.Err, ErrClosed) {
		t.Fatalf("submit after Close: err = %v, want ErrClosed", res.Err)
	}
	// Serial use resumes after Close.
	res, st := m.Get([]uint64{1, 2, 3, 4})
	if st.Batch != 4 || !res[0].Found || res[0].Value != 10 || res[3].Found {
		t.Fatalf("serial Get after Close: res=%+v st=%+v", res, st)
	}
}
