package pimgo

// Cross-GOMAXPROCS determinism: the simulator executes rounds and parallel
// CPU constructs on real goroutines, but every measured quantity is
// analytic and every reply stream is collected in a fixed order — so a
// mixed Upsert/Delete/Successor workload must produce bit-identical
// BatchStats, result sequences, and final structure no matter how many OS
// threads ran it. This is the contract that makes every experiment in
// EXPERIMENTS.md reproducible, and it pins the persistent-worker round
// engine (internal/pim) and the persistent CPU worker pool (internal/cpu)
// to the reference inline semantics.

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"testing"
)

// detFingerprint is everything one workload run observes: the per-batch
// stats, an FNV hash of the in-order result stream (reply order), and an
// FNV hash of the final structure snapshot.
type detFingerprint struct {
	stats     []BatchStats
	resultSum uint64
	structSum uint64
	faults    FaultStats
}

// runDetWorkload executes the mixed workload, optionally under a fault
// plan (nil = reliable network).
func runDetWorkload(plan FaultPlan) detFingerprint {
	const p = 16
	m := NewMap[uint64, int64](Config{P: p, Seed: 4242, Fault: plan}, Uint64Hash)
	res := fnv.New64a()
	var fp detFingerprint

	// Small deterministic PRNG, independent of math/rand's default source.
	state := uint64(0x9E3779B97F4A7C15)
	next := func(n uint64) uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state % n
	}

	for round := 0; round < 6; round++ {
		keys := make([]uint64, 0, 64)
		vals := make([]int64, 0, 64)
		for i := 0; i < 64; i++ {
			k := next(1 << 16)
			keys = append(keys, k)
			vals = append(vals, int64(k*3+uint64(round)))
		}
		ins, st := m.Upsert(keys, vals)
		fp.stats = append(fp.stats, st)
		for _, b := range ins {
			fmt.Fprintf(res, "u%v", b)
		}

		queries := make([]uint64, 0, 32)
		for i := 0; i < 32; i++ {
			queries = append(queries, next(1<<16))
		}
		sr, st2 := m.Successor(queries)
		fp.stats = append(fp.stats, st2)
		for _, r := range sr {
			fmt.Fprintf(res, "s%v:%v:%v", r.Found, r.Key, r.Value)
		}

		del := make([]uint64, 0, 16)
		for i := 0; i < 16; i++ {
			del = append(del, keys[next(uint64(len(keys)))])
		}
		ok, st3 := m.Delete(del)
		fp.stats = append(fp.stats, st3)
		for _, b := range ok {
			fmt.Fprintf(res, "d%v", b)
		}

		// Range transforms over deterministic windows, mixed with reads.
		// Under a fault plan this regression-tests ROADMAP item 5: a faulted
		// RangeTransform batch's IOTime/TotalMsgs must not depend on the
		// scheduling of the write-back sends (the dirty-leaf sweep is an
		// ordered traversal, not a map iteration).
		lo := next(1 << 16)
		rr, st4 := m.RangeAuto([]RangeOp[uint64, int64]{
			{Lo: lo, Hi: lo + 4096, Kind: RangeTransform,
				Transform: func(v int64) int64 { return v*2 + 1 }},
			{Lo: lo / 2, Hi: lo/2 + 8192, Kind: RangeCount},
			{Lo: lo, Hi: lo + 1024, Kind: RangeRead},
		})
		fp.stats = append(fp.stats, st4)
		for _, r := range rr {
			fmt.Fprintf(res, "r%v", r.Count)
			for _, pr := range r.Pairs {
				fmt.Fprintf(res, "p%v=%v", pr.Key, pr.Value)
			}
		}
	}
	fp.resultSum = res.Sum64()

	snapKeys, snapVals, _ := m.Snapshot()
	str := fnv.New64a()
	for i := range snapKeys {
		fmt.Fprintf(str, "%v=%v;", snapKeys[i], snapVals[i])
	}
	fp.structSum = str.Sum64()
	fp.faults = m.FaultStats()
	return fp
}

// detBatch is one step of the workspace-reuse schedule: an operation plus
// its (deterministically generated) arguments.
type detBatch struct {
	op   string
	keys []uint64
	vals []int64
}

// detSchedule builds an interleaved schedule of wildly varying batch sizes
// and all batch op kinds, so the long-lived Map's workspace is repeatedly
// grown, shrunk, and switched between op-specific layouts.
func detSchedule() []detBatch {
	state := uint64(0xD5A5C4ED ^ 0xFFFF1111) // xorshift seed
	next := func(n uint64) uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state % n
	}
	ops := []string{"upsert", "get", "succ", "delete", "update"}
	sizes := []int{8, 200, 3, 64, 500, 1, 33, 128, 16, 77, 256, 5}
	var sched []detBatch
	for i, sz := range sizes {
		b := detBatch{op: ops[i%len(ops)]}
		for j := 0; j < sz; j++ {
			k := 1 + next(1<<14)
			b.keys = append(b.keys, k)
			b.vals = append(b.vals, int64(k*7+uint64(i)))
		}
		sched = append(sched, b)
	}
	return sched
}

// applyDetBatch runs one scheduled batch and digests its replies.
func applyDetBatch(m *Map[uint64, int64], b detBatch) (uint64, BatchStats) {
	h := fnv.New64a()
	var st BatchStats
	switch b.op {
	case "upsert":
		ins, s := m.Upsert(b.keys, b.vals)
		st = s
		for _, v := range ins {
			fmt.Fprintf(h, "u%v", v)
		}
	case "get":
		res, s := m.Get(b.keys)
		st = s
		for _, r := range res {
			fmt.Fprintf(h, "g%v:%v", r.Found, r.Value)
		}
	case "succ":
		res, s := m.Successor(b.keys)
		st = s
		for _, r := range res {
			fmt.Fprintf(h, "s%v:%v:%v", r.Found, r.Key, r.Value)
		}
	case "delete":
		ok, s := m.Delete(b.keys)
		st = s
		for _, v := range ok {
			fmt.Fprintf(h, "d%v", v)
		}
	case "update":
		ok, s := m.Update(b.keys, b.vals)
		st = s
		for _, v := range ok {
			fmt.Fprintf(h, "w%v", v)
		}
	}
	return h.Sum64(), st
}

// TestDeterminismWorkspaceReuse pins the tentpole's reuse contract: a
// long-lived Map whose batch workspace is recycled across an interleaved
// schedule of different sizes and op kinds must produce, at every step,
// exactly the replies and metrics of a cold Map that replays the prefix of
// the schedule on fresh buffers. Any stale-buffer leak between batches
// (a result slice not truncated, a count not cleared, an arena slot read
// before written) shows up as a digest or stats divergence here.
func TestDeterminismWorkspaceReuse(t *testing.T) {
	sched := detSchedule()

	// Long-lived run: one Map, one workspace, all batches.
	live := NewMap[uint64, int64](Config{P: 8, Seed: 777}, Uint64Hash)
	digests := make([]uint64, len(sched))
	stats := make([]BatchStats, len(sched))
	for i, b := range sched {
		digests[i], stats[i] = applyDetBatch(live, b)
	}

	// Replay: for every step k, a fresh Map replays batches 0..k-1 to
	// reach the same logical state with cold buffers, then runs batch k.
	for k := range sched {
		fresh := NewMap[uint64, int64](Config{P: 8, Seed: 777}, Uint64Hash)
		for i := 0; i < k; i++ {
			applyDetBatch(fresh, sched[i])
		}
		d, st := applyDetBatch(fresh, sched[k])
		if d != digests[k] {
			t.Errorf("batch %d (%s, size %d): reply digest %x on fresh Map != %x on long-lived Map",
				k, sched[k].op, len(sched[k].keys), d, digests[k])
		}
		if st != stats[k] {
			t.Errorf("batch %d (%s, size %d): stats diverge:\n  fresh %+v\n  lived %+v",
				k, sched[k].op, len(sched[k].keys), st, stats[k])
		}
	}

	// Finally the structures themselves must agree.
	replay := NewMap[uint64, int64](Config{P: 8, Seed: 777}, Uint64Hash)
	for _, b := range sched {
		applyDetBatch(replay, b)
	}
	hashOf := func(m *Map[uint64, int64]) uint64 {
		ks, vs, _ := m.Snapshot()
		h := fnv.New64a()
		for i := range ks {
			fmt.Fprintf(h, "%v=%v;", ks[i], vs[i])
		}
		return h.Sum64()
	}
	if a, b := hashOf(live), hashOf(replay); a != b {
		t.Errorf("final structure hash %x (long-lived) != %x (replay)", a, b)
	}
}

func TestDeterminismAcrossGOMAXPROCS(t *testing.T) {
	checkDetAcrossGOMAXPROCS(t, nil)
}

// TestFaultedDeterminismAcrossGOMAXPROCS extends the contract to faulted
// runs: with a seeded chaos plan installed, drops, duplicates, delays,
// stalls, and crashes are all decided by pure hashing and every recovery
// step runs on the caller's goroutine — so the reply stream, every batch's
// stats (including the inflated Rounds/IOTime paid for recovery), the
// final structure, AND the fault counters themselves must be bit-identical
// at any thread count.
func TestFaultedDeterminismAcrossGOMAXPROCS(t *testing.T) {
	checkDetAcrossGOMAXPROCS(t, ChaosFaultPlan(0xFA011))
}

// TestFaultedDeterminismAllPlans runs the same cross-GOMAXPROCS contract —
// which now includes RangeTransform batches — under every built-in fault
// plan. Fault fates key on per-send logical ids assigned in submission
// order, so any scheduling-dependent send ordering (like the map-iteration
// write-back RangeTransform used to have; ROADMAP item 5) diverges here as
// an IOTime/TotalMsgs mismatch between thread counts.
func TestFaultedDeterminismAllPlans(t *testing.T) {
	plans := []struct {
		name string
		plan FaultPlan
	}{
		{"drop", DropFaultPlan(0xD1, 200)},
		{"dup", DupFaultPlan(0xD2, 200)},
		{"delay", DelayFaultPlan(0xD3, 200, 3)},
		{"stall", StallFaultPlan(0xD4, 200, 4)},
		{"crash", CrashFaultPlan(0xD5, 30, 2)},
		{"chaos", ChaosFaultPlan(0xD6)},
		{"seeded", NewSeededFaultPlan(FaultConfig{
			Seed: 0xD7, DropBP: 100, DupBP: 100, DelayBP: 100,
			MaxDelay: 2, StallBP: 100, StallFactor: 3,
		})},
	}
	for _, tc := range plans {
		t.Run(tc.name, func(t *testing.T) {
			checkDetAcrossGOMAXPROCS(t, tc.plan)
		})
	}
}

func checkDetAcrossGOMAXPROCS(t *testing.T, plan FaultPlan) {
	t.Helper()
	settings := []int{1, 4, runtime.NumCPU()}
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)

	var ref detFingerprint
	for i, gmp := range settings {
		runtime.GOMAXPROCS(gmp)
		fp := runDetWorkload(plan)
		if i == 0 {
			ref = fp
			if plan != nil && ref.faults == (FaultStats{}) {
				t.Fatalf("fault plan installed but no faults fired: %+v", ref.faults)
			}
			continue
		}
		if fp.resultSum != ref.resultSum {
			t.Errorf("GOMAXPROCS=%d: result stream hash %x != %x at GOMAXPROCS=%d",
				gmp, fp.resultSum, ref.resultSum, settings[0])
		}
		if fp.structSum != ref.structSum {
			t.Errorf("GOMAXPROCS=%d: structure hash %x != %x at GOMAXPROCS=%d",
				gmp, fp.structSum, ref.structSum, settings[0])
		}
		if fp.faults != ref.faults {
			t.Errorf("GOMAXPROCS=%d: fault stats diverge:\n  got  %+v\n  want %+v",
				gmp, fp.faults, ref.faults)
		}
		if len(fp.stats) != len(ref.stats) {
			t.Fatalf("GOMAXPROCS=%d: %d batches vs %d", gmp, len(fp.stats), len(ref.stats))
		}
		for j := range fp.stats {
			if fp.stats[j] != ref.stats[j] {
				t.Errorf("GOMAXPROCS=%d: batch %d stats diverge:\n  got  %+v\n  want %+v",
					gmp, j, fp.stats[j], ref.stats[j])
			}
		}
	}
}
