package pimgo

// Cross-GOMAXPROCS determinism: the simulator executes rounds and parallel
// CPU constructs on real goroutines, but every measured quantity is
// analytic and every reply stream is collected in a fixed order — so a
// mixed Upsert/Delete/Successor workload must produce bit-identical
// BatchStats, result sequences, and final structure no matter how many OS
// threads ran it. This is the contract that makes every experiment in
// EXPERIMENTS.md reproducible, and it pins the persistent-worker round
// engine (internal/pim) and the persistent CPU worker pool (internal/cpu)
// to the reference inline semantics.

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"testing"
)

// detFingerprint is everything one workload run observes: the per-batch
// stats, an FNV hash of the in-order result stream (reply order), and an
// FNV hash of the final structure snapshot.
type detFingerprint struct {
	stats     []BatchStats
	resultSum uint64
	structSum uint64
}

func runDetWorkload() detFingerprint {
	const p = 16
	m := NewMap[uint64, int64](Config{P: p, Seed: 4242}, Uint64Hash)
	res := fnv.New64a()
	var fp detFingerprint

	// Small deterministic PRNG, independent of math/rand's default source.
	state := uint64(0x9E3779B97F4A7C15)
	next := func(n uint64) uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state % n
	}

	for round := 0; round < 6; round++ {
		keys := make([]uint64, 0, 64)
		vals := make([]int64, 0, 64)
		for i := 0; i < 64; i++ {
			k := next(1 << 16)
			keys = append(keys, k)
			vals = append(vals, int64(k*3+uint64(round)))
		}
		ins, st := m.Upsert(keys, vals)
		fp.stats = append(fp.stats, st)
		for _, b := range ins {
			fmt.Fprintf(res, "u%v", b)
		}

		queries := make([]uint64, 0, 32)
		for i := 0; i < 32; i++ {
			queries = append(queries, next(1<<16))
		}
		sr, st2 := m.Successor(queries)
		fp.stats = append(fp.stats, st2)
		for _, r := range sr {
			fmt.Fprintf(res, "s%v:%v:%v", r.Found, r.Key, r.Value)
		}

		del := make([]uint64, 0, 16)
		for i := 0; i < 16; i++ {
			del = append(del, keys[next(uint64(len(keys)))])
		}
		ok, st3 := m.Delete(del)
		fp.stats = append(fp.stats, st3)
		for _, b := range ok {
			fmt.Fprintf(res, "d%v", b)
		}
	}
	fp.resultSum = res.Sum64()

	snapKeys, snapVals, _ := m.Snapshot()
	str := fnv.New64a()
	for i := range snapKeys {
		fmt.Fprintf(str, "%v=%v;", snapKeys[i], snapVals[i])
	}
	fp.structSum = str.Sum64()
	return fp
}

func TestDeterminismAcrossGOMAXPROCS(t *testing.T) {
	settings := []int{1, 4, runtime.NumCPU()}
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)

	var ref detFingerprint
	for i, gmp := range settings {
		runtime.GOMAXPROCS(gmp)
		fp := runDetWorkload()
		if i == 0 {
			ref = fp
			continue
		}
		if fp.resultSum != ref.resultSum {
			t.Errorf("GOMAXPROCS=%d: result stream hash %x != %x at GOMAXPROCS=%d",
				gmp, fp.resultSum, ref.resultSum, settings[0])
		}
		if fp.structSum != ref.structSum {
			t.Errorf("GOMAXPROCS=%d: structure hash %x != %x at GOMAXPROCS=%d",
				gmp, fp.structSum, ref.structSum, settings[0])
		}
		if len(fp.stats) != len(ref.stats) {
			t.Fatalf("GOMAXPROCS=%d: %d batches vs %d", gmp, len(fp.stats), len(ref.stats))
		}
		for j := range fp.stats {
			if fp.stats[j] != ref.stats[j] {
				t.Errorf("GOMAXPROCS=%d: batch %d stats diverge:\n  got  %+v\n  want %+v",
					gmp, j, fp.stats[j], ref.stats[j])
			}
		}
	}
}
