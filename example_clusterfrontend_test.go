package pimgo_test

import (
	"fmt"

	"pimgo"
)

// ExampleClusterFrontend mirrors the README's composed-stack snippet, so it
// is verified by `go test` and cannot rot: single-key ops from any number
// of goroutines, coalesced into batches over a sharded elastic cluster,
// with the background rebalance loop free to migrate slots underneath.
func ExampleClusterFrontend() {
	c, err := pimgo.NewCluster[uint64, int64](pimgo.ClusterConfig{
		Shards: 4,
		Seed:   42,
		Shard:  pimgo.Config{P: 8},
	}, pimgo.Uint64Hash)
	if err != nil {
		panic(err)
	}
	defer c.Close()

	// RebalanceEvery > 0 would start the self-driving rebalance loop; this
	// example keeps it off so the output is fixed.
	f := pimgo.NewClusterFrontend(c, pimgo.ClusterFrontendConfig{MaxBatch: 1024})

	inserted, _ := f.Upsert(10, 1)
	f.Upsert(20, 2)
	f.Upsert(30, 3)
	res, _ := f.Get(20)
	succ, _ := f.Successor(15)
	found, _ := f.Delete(30)

	f.Close() // drains in-flight ops; the cluster stays open

	st := f.Stats()
	fmt.Println("first insert fresh:", inserted)
	fmt.Println("get 20:", res.Found, res.Value)
	fmt.Println("successor of 15:", succ.Key, succ.Value)
	fmt.Println("deleted 30:", found)
	fmt.Println("ops served:", st.Ops)
	// Output:
	// first insert fresh: true
	// get 20: true 2
	// successor of 15: 20 2
	// deleted 30: true
	// ops served: 6
}
